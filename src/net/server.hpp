#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/dataset.hpp"
#include "fl/local_train.hpp"
#include "fl/session.hpp"
#include "model/model.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

namespace fedtrans {

/// Ground-truth outcome of one task of a fabric round (indexed like the
/// coordinator's task list). Billing needs the truth even when the
/// corresponding message never reached the server.
enum class ClientOutcome : std::uint8_t {
  Trained,   ///< update arrived; eligible for aggregation
  LostDown,  ///< invitation/model lost on the downlink — no compute burned
  LostUp,    ///< trained, but the update was lost on the uplink
  Dropout,   ///< trained, then the device went offline before uploading
};

/// What one fabric exchange produced, per task slot — plus the round's
/// retry-policy resend traffic (FabricTopology::max_retries) and leaf
/// failover traffic, split by direction so the engine can bill them
/// through CostMeter.
///
/// In numeric partial-aggregation rounds (`reduced == true`) the per-slot
/// results carry metrics only (empty delta): the deltas were pre-summed in
/// the tree and arrive as `groups`, one per reduce key, for the strategy's
/// `absorb_reduced` hook.
struct ExchangeResult {
  std::vector<LocalTrainResult> results;  ///< valid iff outcome == Trained
  std::vector<ClientOutcome> outcomes;
  bool reduced = false;
  std::vector<ReducedGroup> groups;  ///< reduced mode only, merged at root
  double retry_down_bytes = 0.0;
  double retry_up_bytes = 0.0;
  double failover_down_bytes = 0.0;
  int leaf_failovers = 0;
  /// Downlink bytes the round's delta ModelDowns saved vs full payloads
  /// (FabricTopology::delta_downlink); credited back through CostMeter.
  double delta_saved_bytes = 0.0;
};

/// Deterministic shape of the aggregation tree implied by a FabricTopology:
/// tier 0 is the root (`kServerId`), tiers 1..levels-1 are aggregator
/// tiers, and the bottom tier holds the `shards` leaves. Interior tiers
/// shrink by the branching factor going up (node (t, j)'s children are
/// tier-(t+1) nodes [j·b, (j+1)·b) clamped). Every participant of the
/// simulated fabric derives the same tree from the same topology, so
/// routing needs no wire-level discovery — bundles only carry the leaf
/// range they cover.
class FabricTree {
 public:
  FabricTree() = default;  ///< flat fabric: no aggregators
  explicit FabricTree(const FabricTopology& topo);

  int levels() const { return levels_; }
  int leaves() const { return levels_ >= 2 ? width_.back() : 0; }
  int branching() const { return branching_; }
  int num_aggregators() const { return total_; }
  int tier_width(int tier) const {
    return width_[static_cast<std::size_t>(tier - 1)];
  }
  /// Endpoint id of node j of tier t (t in [1, levels); leaves are the
  /// bottom tier). Leaves keep the historical ids aggregator_id(0..L-1).
  std::int32_t node_id(int tier, int j) const;
  std::int32_t leaf_id(int leaf) const { return node_id(levels_ - 1, leaf); }
  /// Endpoint of node (t, j)'s parent — the root for t == 1.
  std::int32_t parent_id(int tier, int j) const;
  /// Children of node (t, j) as indices [lo, hi) into tier t + 1.
  std::pair<int, int> child_range(int tier, int j) const;
  /// Leaf partitions covered by the subtree under node (t, j) as [lo, hi).
  std::pair<int, int> leaf_range(int tier, int j) const;
  /// The tier-`tier` node whose subtree covers `leaf`.
  int node_covering(int tier, int leaf) const;
  /// Siblings of leaf `s` (its parent's child range, including itself).
  std::pair<int, int> sibling_range(int leaf) const;

 private:
  int levels_ = 1;
  int branching_ = 1;
  std::vector<int> width_;   ///< width_[t-1] = nodes on tier t
  std::vector<int> offset_;  ///< offset_[t-1] = first aggregator index of t
  int total_ = 0;
};

/// One asynchronous (FedBuff-mode) fabric round trip: ModelDown to one
/// client, local training on receipt, UpdateUp back — with the retry
/// policy applied to the uplink. `update_at_s` is the server-side delivery
/// instant of the UpdateUp, which is what orders completions in the
/// engine's fabric-backed async event loop.
struct AsyncTurnaround {
  ClientOutcome outcome = ClientOutcome::LostDown;
  double update_at_s = 0.0;  ///< UpdateUp delivery time; valid iff Trained
  double busy_s = 0.0;       ///< device time burned (downlink + train + up)
  double retry_up_bytes = 0.0;  ///< resend traffic of this turnaround
  /// This job's leaf was dead and the round trip was routed through a
  /// sibling (tree sessions only; counted into RoundRecord by the engine).
  bool failed_over = false;
  LocalTrainResult res;      ///< metrics always; delta valid iff Trained
};

/// Per-client memory of the last model each client decoded from a
/// ModelDown, shared between the downlink senders (who diff the next
/// round's payload against it, FabricTopology::delta_downlink) and the
/// ClientAgent pollers (who record what actually got decoded). The store
/// is only advanced after a client's poll completes — every delta sent
/// within a round is diffed against the same base — and only when the
/// client decoded exactly one ModelDown that round: a multi-slot client
/// decodes several models per round, so its slot is erased rather than
/// left ambiguous (it simply keeps receiving full payloads). Entries are
/// versioned; the version rides the wire and a mismatch rejects the frame,
/// so a desynchronized diff can never silently corrupt client weights.
class DeltaStore {
 public:
  struct Entry {
    std::uint64_t version = 0;
    std::uint64_t spec_digest = 0;  ///< fnv1a64 of the model's spec text
    WeightSet weights;
  };

  /// The client's current entry (shared snapshot; senders and the client's
  /// own poll may read concurrently), or nullptr when none is held.
  std::shared_ptr<const Entry> peek(int client) const;
  void update(int client, std::shared_ptr<const Entry> e);
  void erase(int client);

 private:
  mutable std::mutex m_;
  std::unordered_map<int, std::shared_ptr<const Entry>> map_;
};

/// Edge-device worker: owns one client's fabric endpoint. On receipt of a
/// (JoinRound, ModelDown) pair for a task slot it materializes the payload
/// model — the round prototype for shared-blob broadcasts, or the
/// architecture serialized into the frame for heterogeneous strategies —
/// replays the coordinator-forked Rng, runs local_train, and uploads
/// UpdateUp per task to the coordinator that sent the model (the root, or
/// a shard aggregator in hierarchical topologies) — or Abort, if the fault
/// injector says the device dropped out mid-round. A lost UpdateUp is
/// resent `ack_timeout_s` apart, up to `max_retries` times.
class ClientAgent {
 public:
  ClientAgent(int id, const ClientDataProvider& data, LocalTrainConfig local,
              FabricTopology policy);

  /// Drain this client's mailbox for `round`, train every task whose
  /// invitation and model both arrived, and record each task's outcome in
  /// its slot of `outcomes` (slots are disjoint across agents, so workers
  /// write concurrently without coordination). `store`, when given, is the
  /// fabric's DeltaStore: delta-flagged ModelDowns decode against the
  /// client's entry, and the entry advances to what this poll decoded.
  void poll(std::uint32_t round, const Model& prototype, Transport& net,
            std::vector<ClientOutcome>& outcomes, DeltaStore* store = nullptr);

 private:
  int id_;
  const ClientDataProvider* data_;
  LocalTrainConfig local_;
  FabricTopology policy_;
};

/// Multithreaded federation coordinator: executes the per-round protocol
///
///   Broadcast — JoinRound + ModelDown frame per task slot
///   Collect   — ClientAgent workers run concurrently on the shared
///               ThreadPool; the server drains its mailbox, deduplicates,
///               and matches UpdateUp/Abort frames to the task list
///   (Aggregation stays with the caller — the FederationEngine folds the
///    collected deltas with exactly the same fixed-order reduction as its
///    in-process path, which is what makes fault-free fabric runs bitwise
///    identical.)
///
/// With a tree topology (FabricTopology::levels >= 2) the same round runs
/// over an aggregation tree of arbitrary depth: the root ships one bundled
/// ShardDown frame per child, interior tiers split bundles among their
/// children, and each leaf aggregator fans its bundle out to its client
/// partition (task slot i belongs to leaf i % shards), collects the
/// partition's UpdateUps — node-parallel on the shared ThreadPool — and
/// forwards one bundled PartialUp upstream, merged tier by tier back to
/// the root. By default bundles carry the per-task updates verbatim, so
/// the root reassembles exactly the task list a flat round would have
/// collected and fault-free tree rounds of any depth stay bitwise
/// identical to flat ones. With FabricTopology::partial_aggregation the
/// aggregators instead reduce their updates numerically (per reduce group:
/// Σ num_samples·Δ + the weight total, folded in ascending min-slot order
/// at every merge point) and only per-task metrics ride verbatim.
///
/// Leaves are per-shard fault domains: a leaf dead for the round
/// (FaultConfig::leaf_death_prob) has its partition's bundle redirected to
/// an alive sibling one ack-timeout later — billed as failover traffic and
/// counted in FabricStats::leaf_failovers. With no alive sibling the
/// partition is lost for the round (LostDown).
///
/// Straggler policy (overcommit/deadline) is applied by the strategy before
/// broadcast from predicted completion times, FedScale-style, so the task
/// list the fabric sees is already deadline-trimmed.
class FederationServer {
 public:
  enum class Phase : std::uint8_t { Idle, Broadcast, Collect, Aggregate };

  FederationServer(const Model& prototype, const ClientDataProvider& data,
                   std::vector<DeviceProfile> fleet, LocalTrainConfig local,
                   FaultConfig faults, FabricTopology topology = {},
                   TransportKind transport = TransportKind::Sim,
                   SocketOptions socket = {});

  /// Shared-model exchange: every task downloads the same `global` weight
  /// snapshot (encoded once) into the prototype architecture. `clients[i]`
  /// is task slot i's client; `client_rngs[i]` is the coordinator-forked
  /// generator it must train with. Slot order is preserved in the result.
  /// `reduce_keys` (one per slot) turns on the numeric reduction for this
  /// round when the topology opts in; empty = verbatim bundles.
  ExchangeResult run_round(std::uint32_t round, const WeightSet& global,
                           const std::vector<int>& clients,
                           const std::vector<Rng>& client_rngs,
                           const std::vector<std::int32_t>& reduce_keys = {});

  /// Heterogeneous exchange: task slot i downloads `payloads[i]` —
  /// architecture and weights ride the wire, so clients may train
  /// different submodels (and one client may appear in several slots).
  ExchangeResult run_round(std::uint32_t round,
                           const std::vector<Model*>& payloads,
                           const std::vector<int>& clients,
                           const std::vector<Rng>& client_rngs,
                           const std::vector<std::int32_t>& reduce_keys = {});

  /// One asynchronous round trip for the engine's fabric-backed FedBuff
  /// loop: send `global` to `client` as a ModelDown at simulated instant
  /// `now_s` (round field = `job`), let the agent train on receipt and
  /// upload UpdateUp under the retry policy, and collect it from the
  /// server mailbox. With a tree topology the frames hop through the
  /// client's leaf partition (leaf = client % shards, failover applied) on
  /// the zero-latency backbone, so the server-side delivery order the
  /// engine folds completions in is preserved relative to a flat fabric.
  /// Pure message passing — no aggregation state here.
  AsyncTurnaround async_exchange(std::uint32_t job, int client,
                                 const WeightSet& global, const Rng& rng,
                                 double now_s);

  Phase phase() const { return phase_; }
  const Transport& transport() const { return *net_; }
  const FabricStats& stats() const { return net_->stats(); }
  int num_clients() const { return net_->num_clients(); }
  const FabricTopology& topology() const { return topo_; }
  const FabricTree& tree() const { return tree_; }
  bool sharded() const { return topo_.levels >= 2; }

 private:
  void send_join(std::uint32_t round, std::int32_t task, int client,
                 std::int32_t coordinator, double sent_at_s = 0.0);
  void broadcast_shared(std::uint32_t round, const WeightSet& global,
                        const std::vector<int>& clients,
                        const std::vector<Rng>& client_rngs);
  void broadcast_tasks(std::uint32_t round,
                       const std::vector<Model*>& payloads,
                       const std::vector<int>& clients,
                       const std::vector<Rng>& client_rngs);
  /// Tree broadcast: per root child, one ShardDown bundle referencing
  /// `slot_body[i]` (the [spec][weights] section task i downloads);
  /// interior tiers split bundles downward; leaves fan out to per-client
  /// JoinRound + ModelDown frames.
  void broadcast_sharded(std::uint32_t round, const std::vector<int>& clients,
                         const std::vector<Rng>& client_rngs,
                         const std::vector<const std::string*>& slot_body);
  /// Send one pre-filtered bundle down to node (tier, j): leaf bundles
  /// apply the failover policy, interior bundles go straight down with the
  /// retry policy.
  void send_bundle(std::uint32_t round, std::int32_t src, int tier, int j,
                   const ShardDownlink& d, double sent_at_s);
  /// Interior downlink pass for tiers 1..levels-2: split each received
  /// bundle among the node's children (node-parallel per tier).
  void route_tiers_down(std::uint32_t round);
  void fan_out_shards(std::uint32_t round);
  /// Concurrent ClientAgent polling (one worker per distinct client).
  void poll_agents(std::uint32_t round, const std::vector<int>& clients,
                   ExchangeResult& out);
  void collect(std::uint32_t round, const std::vector<int>& clients,
               ExchangeResult& out);
  /// Tree collect: leaves match their partition(s) and forward PartialUp
  /// bundles; interior tiers merge child bundles upward (node-parallel);
  /// the root merges into the task list (or, reduced, the group list).
  void collect_sharded(std::uint32_t round, const std::vector<int>& clients,
                       ExchangeResult& out);
  ExchangeResult exchange(std::uint32_t round,
                          const std::vector<int>& clients,
                          std::size_t n_rngs,
                          const std::function<void()>& broadcast_fn);
  /// The leaf serving partition `s` in `round` under the failover policy
  /// (itself when alive, else the next alive sibling, wrapping; -1 when
  /// the whole sibling group is dead).
  int owner_leaf(std::uint32_t round, int s) const;

  // Wire v6 broadcast-cache bookkeeping (topo_.broadcast_cache). Aggregator
  // state is indexed by aggregator index (aggregator_id(k) → k); each
  // node's cache and known-map are touched only by the single worker that
  // drains or feeds that node, so no locking is needed.
  /// Elision mask for sending bundle `d` to aggregator `dst`: marks every
  /// body the receiver's cache is known to hold, and bills the elided bytes
  /// into FabricStats. Empty when caching is off or nothing can be elided.
  std::vector<std::uint8_t> elide_mask_for(std::int32_t dst,
                                           const ShardDownlink& d);
  /// After a confirmed delivery of `d` to `dst`, replay the receiver's
  /// cache-eviction rule into its known-map (bodies in table order).
  void note_bundle_known(std::int32_t dst, const ShardDownlink& d);
  /// Drop tasks referencing bodies the decode left missing (elided bodies
  /// absent from this node's cache) — they surface as LostDown.
  static void drop_missing_bodies(ShardDownlink& d, std::int32_t node);

  /// Sender-side view of a broadcast body (what a client will decode) for
  /// delta-downlink diffing.
  struct ParsedBody {
    std::uint64_t spec_digest = 0;
    std::string spec;
    WeightSet weights;
  };
  static ParsedBody parse_body(const std::string& body);
  /// Encode task `slot`'s ModelDown payload for `client`: a delta against
  /// the client's DeltaStore entry when the topology opts in, the store
  /// matches and the diff is smaller — else the full `body`-backed payload.
  /// Savings are billed into FabricStats at the decision point.
  std::string model_down_for(std::uint32_t round, std::int32_t slot,
                             int client, const std::string& body,
                             const ParsedBody* parsed,
                             const std::array<std::uint64_t, 4>& rng_state,
                             std::uint8_t& flags);

  Model prototype_;
  const ClientDataProvider* data_;
  LocalTrainConfig local_;
  FabricTopology topo_;
  FabricTree tree_;
  std::unique_ptr<Transport> net_;
  /// Per-round, per-leaf fan-out memory: slot → reduce key of the tasks
  /// this leaf served (written only by the owning leaf's worker), plus the
  /// round's numeric-mode flag and per-slot reduce keys. Consumed by the
  /// leaf's collect pass.
  std::vector<std::map<std::int32_t, std::int32_t>> leaf_served_;
  std::vector<std::int32_t> round_reduce_;
  bool reduced_round_ = false;
  Phase phase_ = Phase::Idle;
  /// Receiver-side broadcast caches, one per aggregator (broadcast_cache).
  std::vector<BroadcastCache> bcast_cache_;
  /// Sender-side mirror of each aggregator's cache contents: spec digest →
  /// body hash, advanced only after a confirmed-delivered send, consulted
  /// by elide_mask_for.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> child_known_;
  /// Per-client last-decoded-model memory for delta downlinks.
  DeltaStore delta_store_;
};

}  // namespace fedtrans
