#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "fl/local_train.hpp"
#include "model/model.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

namespace fedtrans {

/// Ground-truth outcome of one task of a fabric round (indexed like the
/// coordinator's task list). Billing needs the truth even when the
/// corresponding message never reached the server.
enum class ClientOutcome : std::uint8_t {
  Trained,   ///< update arrived; eligible for aggregation
  LostDown,  ///< invitation/model lost on the downlink — no compute burned
  LostUp,    ///< trained, but the update was lost on the uplink
  Dropout,   ///< trained, then the device went offline before uploading
};

/// What one fabric exchange produced, per task slot.
struct ExchangeResult {
  std::vector<LocalTrainResult> results;  ///< valid iff outcome == Trained
  std::vector<ClientOutcome> outcomes;
};

/// Edge-device worker: owns one client's fabric endpoint. On receipt of a
/// (JoinRound, ModelDown) pair for a task slot it materializes the payload
/// model — the round prototype for shared-blob broadcasts, or the
/// architecture serialized into the frame for heterogeneous strategies —
/// replays the coordinator-forked Rng, runs local_train, and uploads
/// UpdateUp per task — or Abort, if the fault injector says the device
/// dropped out mid-round.
class ClientAgent {
 public:
  ClientAgent(int id, const FederatedDataset& data, LocalTrainConfig local);

  /// Drain this client's mailbox for `round`, train every task whose
  /// invitation and model both arrived, and record each task's outcome in
  /// its slot of `outcomes` (slots are disjoint across agents, so workers
  /// write concurrently without coordination).
  void poll(std::uint32_t round, const Model& prototype, SimTransport& net,
            std::vector<ClientOutcome>& outcomes);

 private:
  int id_;
  const FederatedDataset* data_;
  LocalTrainConfig local_;
};

/// Multithreaded federation coordinator: executes the per-round protocol
///
///   Broadcast — JoinRound + ModelDown frame per task slot
///   Collect   — ClientAgent workers run concurrently on the shared
///               ThreadPool; the server drains its mailbox, deduplicates,
///               and matches UpdateUp/Abort frames to the task list
///   (Aggregation stays with the caller — the FederationEngine folds the
///    collected deltas with exactly the same fixed-order reduction as its
///    in-process path, which is what makes fault-free fabric runs bitwise
///    identical.)
///
/// Straggler policy (overcommit/deadline) is applied by the strategy before
/// broadcast from predicted completion times, FedScale-style, so the task
/// list the fabric sees is already deadline-trimmed.
class FederationServer {
 public:
  enum class Phase : std::uint8_t { Idle, Broadcast, Collect, Aggregate };

  FederationServer(const Model& prototype, const FederatedDataset& data,
                   std::vector<DeviceProfile> fleet, LocalTrainConfig local,
                   FaultConfig faults);

  /// Shared-model exchange: every task downloads the same `global` weight
  /// snapshot (encoded once) into the prototype architecture. `clients[i]`
  /// is task slot i's client; `client_rngs[i]` is the coordinator-forked
  /// generator it must train with. Slot order is preserved in the result.
  ExchangeResult run_round(std::uint32_t round, const WeightSet& global,
                           const std::vector<int>& clients,
                           const std::vector<Rng>& client_rngs);

  /// Heterogeneous exchange: task slot i downloads `payloads[i]` —
  /// architecture and weights ride the wire, so clients may train
  /// different submodels (and one client may appear in several slots).
  ExchangeResult run_round(std::uint32_t round,
                           const std::vector<Model*>& payloads,
                           const std::vector<int>& clients,
                           const std::vector<Rng>& client_rngs);

  Phase phase() const { return phase_; }
  const SimTransport& transport() const { return *net_; }
  const FabricStats& stats() const { return net_->stats(); }
  int num_clients() const { return net_->num_clients(); }

 private:
  void send_join(std::uint32_t round, std::int32_t task, int client);
  void broadcast_shared(std::uint32_t round, const WeightSet& global,
                        const std::vector<int>& clients,
                        const std::vector<Rng>& client_rngs);
  void broadcast_tasks(std::uint32_t round,
                       const std::vector<Model*>& payloads,
                       const std::vector<int>& clients,
                       const std::vector<Rng>& client_rngs);
  void collect(std::uint32_t round, const std::vector<int>& clients,
               ExchangeResult& out);
  ExchangeResult exchange(std::uint32_t round,
                          const std::vector<int>& clients,
                          std::size_t n_rngs,
                          const std::function<void()>& broadcast_fn);

  Model prototype_;
  const FederatedDataset* data_;
  std::unique_ptr<SimTransport> net_;
  std::vector<ClientAgent> agents_;
  Phase phase_ = Phase::Idle;
};

}  // namespace fedtrans
