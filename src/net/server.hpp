#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "fl/local_train.hpp"
#include "fl/session.hpp"
#include "model/model.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

namespace fedtrans {

/// Ground-truth outcome of one task of a fabric round (indexed like the
/// coordinator's task list). Billing needs the truth even when the
/// corresponding message never reached the server.
enum class ClientOutcome : std::uint8_t {
  Trained,   ///< update arrived; eligible for aggregation
  LostDown,  ///< invitation/model lost on the downlink — no compute burned
  LostUp,    ///< trained, but the update was lost on the uplink
  Dropout,   ///< trained, then the device went offline before uploading
};

/// What one fabric exchange produced, per task slot — plus the round's
/// retry-policy resend traffic (FabricTopology::max_retries), split by
/// direction so the engine can bill it through CostMeter.
struct ExchangeResult {
  std::vector<LocalTrainResult> results;  ///< valid iff outcome == Trained
  std::vector<ClientOutcome> outcomes;
  double retry_down_bytes = 0.0;
  double retry_up_bytes = 0.0;
};

/// One asynchronous (FedBuff-mode) fabric round trip: ModelDown to one
/// client, local training on receipt, UpdateUp back — with the retry
/// policy applied to the uplink. `update_at_s` is the server-side delivery
/// instant of the UpdateUp, which is what orders completions in the
/// engine's fabric-backed async event loop.
struct AsyncTurnaround {
  ClientOutcome outcome = ClientOutcome::LostDown;
  double update_at_s = 0.0;  ///< UpdateUp delivery time; valid iff Trained
  double busy_s = 0.0;       ///< device time burned (downlink + train + up)
  double retry_up_bytes = 0.0;  ///< resend traffic of this turnaround
  LocalTrainResult res;      ///< metrics always; delta valid iff Trained
};

/// Edge-device worker: owns one client's fabric endpoint. On receipt of a
/// (JoinRound, ModelDown) pair for a task slot it materializes the payload
/// model — the round prototype for shared-blob broadcasts, or the
/// architecture serialized into the frame for heterogeneous strategies —
/// replays the coordinator-forked Rng, runs local_train, and uploads
/// UpdateUp per task to the coordinator that sent the model (the root, or
/// a shard aggregator in hierarchical topologies) — or Abort, if the fault
/// injector says the device dropped out mid-round. A lost UpdateUp is
/// resent `ack_timeout_s` apart, up to `max_retries` times.
class ClientAgent {
 public:
  ClientAgent(int id, const FederatedDataset& data, LocalTrainConfig local,
              FabricTopology policy);

  /// Drain this client's mailbox for `round`, train every task whose
  /// invitation and model both arrived, and record each task's outcome in
  /// its slot of `outcomes` (slots are disjoint across agents, so workers
  /// write concurrently without coordination).
  void poll(std::uint32_t round, const Model& prototype, SimTransport& net,
            std::vector<ClientOutcome>& outcomes);

 private:
  int id_;
  const FederatedDataset* data_;
  LocalTrainConfig local_;
  FabricTopology policy_;
};

/// Multithreaded federation coordinator: executes the per-round protocol
///
///   Broadcast — JoinRound + ModelDown frame per task slot
///   Collect   — ClientAgent workers run concurrently on the shared
///               ThreadPool; the server drains its mailbox, deduplicates,
///               and matches UpdateUp/Abort frames to the task list
///   (Aggregation stays with the caller — the FederationEngine folds the
///    collected deltas with exactly the same fixed-order reduction as its
///    in-process path, which is what makes fault-free fabric runs bitwise
///    identical.)
///
/// With a sharded topology (FabricTopology::levels == 2) the same round
/// runs over a 2-level aggregation tree: the root ships one bundled
/// ShardDown frame per shard, each leaf aggregator fans it out to its
/// client partition (task slot i belongs to shard i % shards), collects
/// the partition's UpdateUps — shard-parallel on the shared ThreadPool —
/// and forwards one bundled PartialUp upstream. Bundles carry the
/// per-task updates verbatim, so the root reassembles exactly the task
/// list a flat round would have collected and fault-free sharded rounds
/// stay bitwise identical to flat ones.
///
/// Straggler policy (overcommit/deadline) is applied by the strategy before
/// broadcast from predicted completion times, FedScale-style, so the task
/// list the fabric sees is already deadline-trimmed.
class FederationServer {
 public:
  enum class Phase : std::uint8_t { Idle, Broadcast, Collect, Aggregate };

  FederationServer(const Model& prototype, const FederatedDataset& data,
                   std::vector<DeviceProfile> fleet, LocalTrainConfig local,
                   FaultConfig faults, FabricTopology topology = {});

  /// Shared-model exchange: every task downloads the same `global` weight
  /// snapshot (encoded once) into the prototype architecture. `clients[i]`
  /// is task slot i's client; `client_rngs[i]` is the coordinator-forked
  /// generator it must train with. Slot order is preserved in the result.
  ExchangeResult run_round(std::uint32_t round, const WeightSet& global,
                           const std::vector<int>& clients,
                           const std::vector<Rng>& client_rngs);

  /// Heterogeneous exchange: task slot i downloads `payloads[i]` —
  /// architecture and weights ride the wire, so clients may train
  /// different submodels (and one client may appear in several slots).
  ExchangeResult run_round(std::uint32_t round,
                           const std::vector<Model*>& payloads,
                           const std::vector<int>& clients,
                           const std::vector<Rng>& client_rngs);

  /// One asynchronous round trip for the engine's fabric-backed FedBuff
  /// loop: send `global` to `client` as a ModelDown at simulated instant
  /// `now_s` (round field = `job`), let the agent train on receipt and
  /// upload UpdateUp under the retry policy, and collect it from the
  /// server mailbox. Pure message passing — no aggregation state here.
  AsyncTurnaround async_exchange(std::uint32_t job, int client,
                                 const WeightSet& global, const Rng& rng,
                                 double now_s);

  Phase phase() const { return phase_; }
  const SimTransport& transport() const { return *net_; }
  const FabricStats& stats() const { return net_->stats(); }
  int num_clients() const { return net_->num_clients(); }
  const FabricTopology& topology() const { return topo_; }
  bool sharded() const { return topo_.levels >= 2; }

 private:
  void send_join(std::uint32_t round, std::int32_t task, int client,
                 std::int32_t coordinator, double sent_at_s = 0.0);
  void broadcast_shared(std::uint32_t round, const WeightSet& global,
                        const std::vector<int>& clients,
                        const std::vector<Rng>& client_rngs);
  void broadcast_tasks(std::uint32_t round,
                       const std::vector<Model*>& payloads,
                       const std::vector<int>& clients,
                       const std::vector<Rng>& client_rngs);
  /// Sharded broadcast: one ShardDown bundle per shard referencing
  /// `slot_body[i]` (the [spec][weights] section task i downloads), then
  /// leaf fan-out to per-client JoinRound + ModelDown frames.
  void broadcast_sharded(std::uint32_t round, const std::vector<int>& clients,
                         const std::vector<Rng>& client_rngs,
                         const std::vector<const std::string*>& slot_body);
  void fan_out_shards(std::uint32_t round);
  /// Concurrent ClientAgent polling (one worker per distinct client).
  void poll_agents(std::uint32_t round, const std::vector<int>& clients,
                   ExchangeResult& out);
  void collect(std::uint32_t round, const std::vector<int>& clients,
               ExchangeResult& out);
  /// Sharded collect: leaves match their partition and forward PartialUp
  /// bundles (shard-parallel); the root merges them into the task list.
  void collect_sharded(std::uint32_t round, const std::vector<int>& clients,
                       ExchangeResult& out);
  ExchangeResult exchange(std::uint32_t round,
                          const std::vector<int>& clients,
                          std::size_t n_rngs,
                          const std::function<void()>& broadcast_fn);

  Model prototype_;
  const FederatedDataset* data_;
  LocalTrainConfig local_;
  FabricTopology topo_;
  std::unique_ptr<SimTransport> net_;
  std::vector<ClientAgent> agents_;
  Phase phase_ = Phase::Idle;
};

}  // namespace fedtrans
