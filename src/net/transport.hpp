#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/wire.hpp"
#include "trace/device.hpp"

namespace fedtrans {

/// Fault-injection knobs of the simulated transport. All probabilities are
/// per-frame (or per-client-per-round for dropout) and are drawn from a
/// counter-hashed generator keyed on (seed, link, sequence number), so fault
/// decisions are bit-reproducible regardless of the order in which threads
/// hit the transport.
struct FaultConfig {
  /// Probability a frame is lost in transit (applies per direction).
  double drop_prob = 0.0;
  /// Probability a frame is delivered twice (receiver-side dedup required).
  double dup_prob = 0.0;
  /// Probability a frame is delayed behind its link successor (reordering).
  /// This perturbs the simulated delivery timestamps (and hence the
  /// (deliver_at, seq) order receivers consume in); the synchronous runner
  /// drains complete mailboxes and reduces in selection order, so outcomes
  /// there are reorder-invariant by design — the knob becomes
  /// behavior-relevant for consumers that apply a delivery window (e.g. a
  /// future async fabric).
  double reorder_prob = 0.0;
  /// Probability a client goes offline mid-round: it trains, then vanishes
  /// before its update leaves the device (an Abort may be attempted).
  double dropout_prob = 0.0;
  /// Probability a leaf aggregator is dead for a whole round (per (round,
  /// leaf) — a per-shard fault domain). The leaf's parent redirects its
  /// client partition to an alive sibling; with no alive sibling the
  /// partition's tasks are lost for the round.
  double leaf_death_prob = 0.0;
  std::uint64_t seed = 0x5eedf417ULL;
};

/// Aggregate transport counters (monotone; atomic so fabric workers can
/// update them concurrently).
struct FabricStats {
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> frames_delivered{0};
  std::atomic<std::uint64_t> frames_dropped{0};
  std::atomic<std::uint64_t> frames_duplicated{0};
  std::atomic<std::uint64_t> frames_reordered{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_delivered{0};
  std::atomic<std::uint64_t> client_dropouts{0};
  /// Delivered frames a receiver could not decode. The simulated transport
  /// never corrupts bytes, so any nonzero value here is a codec bug, not a
  /// fault-injection artifact — fault-free tests assert it stays zero.
  std::atomic<std::uint64_t> frames_rejected{0};
  /// Retry-policy resends (FabricTopology::max_retries) of frames lost in
  /// transit, split by direction so CostMeter can bill them: `down` counts
  /// server→client traffic, `up` counts client→server and shard→root.
  std::atomic<std::uint64_t> frames_retried{0};
  std::atomic<std::uint64_t> retry_bytes_down{0};
  std::atomic<std::uint64_t> retry_bytes_up{0};
  /// Leaf-failover events (a dead leaf's partition redirected to a sibling,
  /// FaultConfig::leaf_death_prob) and the redirected-bundle traffic, billed
  /// through CostMeter like retry resends.
  std::atomic<std::uint64_t> leaf_failovers{0};
  std::atomic<std::uint64_t> failover_bytes_down{0};
  /// Bytes delivered into the root's mailbox — the tree's fan-in pressure
  /// (what numeric partial aggregation collapses from O(clients) to
  /// O(branching); bench_fabric_throughput reports it per round).
  std::atomic<std::uint64_t> bytes_root_in{0};
};

/// A frame in flight / delivered: opaque bytes plus simulated-time stamps.
struct Envelope {
  std::int32_t src = 0;
  std::int32_t dst = 0;
  /// Simulated send/delivery instants (seconds since round start). Delivery
  /// is send + link transfer time; faults may push it further back.
  double sent_at_s = 0.0;
  double deliver_at_s = 0.0;
  /// Per-link sequence number (FIFO order before fault perturbation).
  std::uint64_t seq = 0;
  std::string frame;
};

/// In-process simulated transport between the federation server (endpoint
/// `kServerId` = -1), optional shard aggregators (`aggregator_id(k)` =
/// -2 - k, see wire.hpp), and `num_clients` client endpoints (ids 0..n-1).
///
/// Each destination owns a mutex-guarded mailbox, so fabric workers running
/// on the shared ThreadPool can send/receive concurrently. Time is virtual:
/// send() stamps the envelope with a simulated delivery instant derived from
/// the client-side DeviceProfile bandwidth (server↔aggregator backbone
/// links are treated as infinitely fast) and delivers immediately;
/// receivers consume mailboxes in (deliver_at, seq) order, which is where
/// reordering faults bite.
class SimTransport {
 public:
  SimTransport(std::vector<DeviceProfile> fleet, FaultConfig faults,
               int num_aggregators = 0);

  int num_clients() const { return static_cast<int>(fleet_.size()); }

  /// Queue a frame from `src` to `dst` (either kServerId or a client id),
  /// `sent_at_s` seconds into the simulated round. Returns false if the
  /// frame was lost to fault injection. Thread-safe.
  bool send(std::int32_t src, std::int32_t dst, std::string frame,
            double sent_at_s = 0.0);

  /// Pop the earliest-delivered pending frame for `dst`; nullopt when the
  /// mailbox is empty. Thread-safe.
  std::optional<Envelope> try_recv(std::int32_t dst);

  /// Drain every pending frame for `dst` in delivery order. Thread-safe.
  std::vector<Envelope> drain(std::int32_t dst);

  /// Deterministic per-(round, client) dropout draw — the same question
  /// always gets the same answer, independent of thread schedule.
  bool client_dropped_out(std::uint32_t round, std::int32_t client) const;

  /// Deterministic per-(round, leaf) death draw for the tree's per-shard
  /// fault domains (leaf indexed by its partition id, not endpoint id).
  bool leaf_dead(std::uint32_t round, std::int32_t leaf) const;

  /// One-way simulated transfer time of `bytes` to/from `client`.
  double link_time_s(std::int32_t client, std::size_t bytes) const;

  /// The device behind a client endpoint (agents derive compute time).
  const DeviceProfile& device(std::int32_t client) const;

  const FabricStats& stats() const { return stats_; }
  FabricStats& stats_mutable() { return stats_; }
  const FaultConfig& faults() const { return faults_; }

 private:
  struct Mailbox {
    std::mutex m;
    std::vector<Envelope> q;
  };

  Mailbox& mailbox(std::int32_t endpoint);
  /// Uniform [0,1) hash draw for fault decision `salt` on frame
  /// (link, seq) — counter-based, schedule-independent.
  double fault_draw(std::uint64_t link, std::uint64_t seq,
                    std::uint64_t salt) const;

  std::vector<DeviceProfile> fleet_;
  FaultConfig faults_;
  int num_aggregators_ = 0;
  /// index 0 = server, index c+1 = client c, index n+1+k = aggregator k.
  std::vector<Mailbox> boxes_;
  std::mutex seq_m_;
  std::unordered_map<std::uint64_t, std::uint64_t> link_seq_;
  FabricStats stats_;
};

}  // namespace fedtrans
