#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/wire.hpp"
#include "trace/device.hpp"

namespace fedtrans {

/// How a Byzantine client misbehaves for a round it attacks (see
/// FaultConfig::byzantine_prob; docs/robustness.md for the threat model).
enum class ByzantineMode : std::uint8_t {
  None = 0,
  /// Upload −Δ instead of Δ (classic sign-flipping attack).
  SignFlip,
  /// Upload λ·Δ (λ = FaultConfig::byzantine_lambda) — a scaled/boosted
  /// update that dominates any linear mean.
  ScaledUpdate,
  /// Train honestly but on label-flipped local data (y → C−1−y), so the
  /// update is a well-formed gradient toward the wrong task.
  LabelFlip,
  /// Train and upload honestly, but report a near-perfect training loss —
  /// gaming loss-driven coordinators (FedTrans utility learning, loss-aware
  /// selectors) rather than the weight aggregate.
  UtilityInflate,
};

/// Fault-injection knobs of the transport layer. All probabilities are
/// per-frame (or per-client-per-round for dropout) and are drawn from a
/// counter-hashed generator keyed on (seed, link, sequence number), so fault
/// decisions are bit-reproducible regardless of the order in which threads
/// hit the transport — and regardless of which Transport implementation
/// carries the bytes.
struct FaultConfig {
  /// Probability a frame is lost in transit (applies per direction).
  double drop_prob = 0.0;
  /// Probability a frame is delivered twice (receiver-side dedup required).
  double dup_prob = 0.0;
  /// Probability a frame is delayed behind its link successor (reordering).
  /// This perturbs the simulated delivery timestamps (and hence the
  /// (deliver_at, seq) order receivers consume in); the synchronous runner
  /// drains complete mailboxes and reduces in selection order, so outcomes
  /// there are reorder-invariant by design — the knob becomes
  /// behavior-relevant for consumers that apply a delivery window (e.g. a
  /// future async fabric).
  double reorder_prob = 0.0;
  /// Probability a client goes offline mid-round: it trains, then vanishes
  /// before its update leaves the device (an Abort may be attempted).
  double dropout_prob = 0.0;
  /// Probability a leaf aggregator is dead for a whole round (per (round,
  /// leaf) — a per-shard fault domain). The leaf's parent redirects its
  /// client partition to an alive sibling; with no alive sibling the
  /// partition's tasks are lost for the round.
  double leaf_death_prob = 0.0;
  /// Probability a client behaves Byzantine for a round — drawn per (seed,
  /// round, client) like dropout, so attack schedules are bit-reproducible
  /// across thread counts and transports. Unlike the wire faults above this
  /// models *client* behavior, so it also applies to in-process (non-fabric)
  /// sessions. What an attacking client does is `byzantine_mode`.
  double byzantine_prob = 0.0;
  ByzantineMode byzantine_mode = ByzantineMode::SignFlip;
  /// Scale factor λ of ByzantineMode::ScaledUpdate.
  double byzantine_lambda = 10.0;
  std::uint64_t seed = 0x5eedf417ULL;
};

/// Deterministic per-(round, client) Byzantine draw — a pure function of
/// (f.seed, round, client), mirroring Transport::client_dropped_out but
/// usable without a transport (the in-process engine path asks too).
bool byzantine_client(const FaultConfig& f, std::uint32_t round,
                      std::int32_t client);

/// Aggregate transport counters (monotone; atomic so fabric workers can
/// update them concurrently).
struct FabricStats {
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> frames_delivered{0};
  std::atomic<std::uint64_t> frames_dropped{0};
  std::atomic<std::uint64_t> frames_duplicated{0};
  std::atomic<std::uint64_t> frames_reordered{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_delivered{0};
  std::atomic<std::uint64_t> client_dropouts{0};
  /// Delivered frames a receiver could not decode. The transports never
  /// corrupt bytes, so any nonzero value here is a codec bug, not a
  /// fault-injection artifact — fault-free tests assert it stays zero.
  std::atomic<std::uint64_t> frames_rejected{0};
  /// Retry-policy resends (FabricTopology::max_retries) of frames lost in
  /// transit, split by direction so CostMeter can bill them: `down` counts
  /// server→client traffic, `up` counts client→server and shard→root.
  std::atomic<std::uint64_t> frames_retried{0};
  std::atomic<std::uint64_t> retry_bytes_down{0};
  std::atomic<std::uint64_t> retry_bytes_up{0};
  /// Leaf-failover events (a dead leaf's partition redirected to a sibling,
  /// FaultConfig::leaf_death_prob) and the redirected-bundle traffic, billed
  /// through CostMeter like retry resends.
  std::atomic<std::uint64_t> leaf_failovers{0};
  std::atomic<std::uint64_t> failover_bytes_down{0};
  /// Bytes delivered into the root's mailbox — the tree's fan-in pressure
  /// (what numeric partial aggregation collapses from O(clients) to
  /// O(branching); bench_fabric_throughput reports it per round).
  std::atomic<std::uint64_t> bytes_root_in{0};
  /// Bytes of downlink-direction frames sent (JoinRound/ModelDown/
  /// ShardDown) — the denominator the wire v6 broadcast-cache and
  /// delta-downlink savings are measured against.
  std::atomic<std::uint64_t> bytes_downlink{0};
  /// Broadcast-cache elisions (FabricTopology::broadcast_cache): bundle
  /// bodies shipped as a 64-bit hash because the receiving aggregator
  /// already held the bytes, and the body bytes that never travelled.
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_saved_bytes{0};
  /// Delta ModelDowns (FabricTopology::delta_downlink): frames shipped as
  /// a round-over-round diff, and the bytes saved vs the full payload.
  std::atomic<std::uint64_t> delta_downlinks{0};
  std::atomic<std::uint64_t> delta_saved_bytes{0};
};

/// A frame in flight / delivered: opaque bytes plus simulated-time stamps.
struct Envelope {
  std::int32_t src = 0;
  std::int32_t dst = 0;
  /// Simulated send/delivery instants (seconds since round start). Delivery
  /// is send + link transfer time; faults may push it further back.
  double sent_at_s = 0.0;
  double deliver_at_s = 0.0;
  /// Per-link sequence number (FIFO order before fault perturbation).
  std::uint64_t seq = 0;
  std::string frame;
};

/// Canonical delivery order every transport's receivers consume in:
/// (deliver_at, src, seq) — the total order that makes fault-free rounds
/// independent of which implementation carried the bytes.
bool envelope_earlier(const Envelope& a, const Envelope& b);

/// Abstract transport between the federation server (endpoint `kServerId` =
/// -1), optional shard aggregators (`aggregator_id(k)` = -2 - k, see
/// wire.hpp), and `num_clients` client endpoints (ids 0..n-1).
///
/// The base class owns everything that must be implementation-independent
/// for fault-free rounds to stay bitwise identical across transports: the
/// fleet (simulated link latency and device lookup), the counter-hashed
/// fault draws (drop/dup/reorder/dropout/leaf-death), per-link sequence
/// numbers, envelope timestamp stamping, and the FabricStats accounting.
/// Implementations only decide how stamped envelopes travel from send() to
/// the destination's try_recv()/drain(): `SimTransport` moves them through
/// in-process mailboxes; `SocketTransport` (net/socket_transport.hpp)
/// serializes them over real non-blocking sockets and reassembles frames
/// incrementally on the receive side.
class Transport {
 public:
  Transport(std::vector<DeviceProfile> fleet, FaultConfig faults,
            int num_aggregators);
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  int num_clients() const { return static_cast<int>(fleet_.size()); }
  int num_aggregators() const { return num_aggregators_; }

  /// Queue a frame from `src` to `dst` (either kServerId or a client id),
  /// `sent_at_s` seconds into the simulated round. Returns false if the
  /// frame was lost to fault injection. Thread-safe.
  virtual bool send(std::int32_t src, std::int32_t dst, std::string frame,
                    double sent_at_s = 0.0) = 0;

  /// Pop the earliest-delivered pending frame for `dst`; nullopt when the
  /// mailbox is empty. Thread-safe.
  virtual std::optional<Envelope> try_recv(std::int32_t dst) = 0;

  /// Drain every pending frame for `dst` in delivery order. Thread-safe.
  virtual std::vector<Envelope> drain(std::int32_t dst) = 0;

  /// Implementation tag ("sim", "socket") for diagnostics and metrics.
  virtual std::string name() const = 0;

  /// Deterministic per-(round, client) dropout draw — the same question
  /// always gets the same answer, independent of thread schedule.
  bool client_dropped_out(std::uint32_t round, std::int32_t client) const;

  /// Deterministic per-(round, leaf) death draw for the tree's per-shard
  /// fault domains (leaf indexed by its partition id, not endpoint id).
  bool leaf_dead(std::uint32_t round, std::int32_t leaf) const;

  /// One-way simulated transfer time of `bytes` to/from `client`.
  double link_time_s(std::int32_t client, std::size_t bytes) const;

  /// The device behind a client endpoint (agents derive compute time).
  const DeviceProfile& device(std::int32_t client) const;

  const FabricStats& stats() const { return stats_; }
  FabricStats& stats_mutable() { return stats_; }
  const FaultConfig& faults() const { return faults_; }

 protected:
  /// A send() stamped for delivery: the envelope (timestamps, sequence
  /// number) plus the trailing duplicate when the dup fault fired.
  struct Stamped {
    Envelope env;
    std::optional<Envelope> dup;
  };

  /// Shared front half of every send(): sequence the frame on its link,
  /// count it sent, apply the drop/reorder/dup draws, and stamp simulated
  /// timestamps (client-radio latency; zero-latency backbone between
  /// negative endpoints). Returns nullopt when the frame was dropped —
  /// already counted and traced. Identical across implementations, which is
  /// what keeps fault sequences and envelope metadata bitwise equal.
  std::optional<Stamped> stamp(std::int32_t src, std::int32_t dst,
                               std::string frame, double sent_at_s);

  /// Shared back half: delivered/duplicated/root-fan-in accounting for a
  /// stamped send that reached the destination's queue.
  void account_delivered(const Stamped& s);

  /// Uniform [0,1) hash draw for fault decision `salt` on frame
  /// (link, seq) — counter-based, schedule-independent.
  double fault_draw(std::uint64_t link, std::uint64_t seq,
                    std::uint64_t salt) const;

  /// Endpoint index on the canonical dense layout: 0 = server, c+1 =
  /// client c, n+1+k = aggregator k. Checks the endpoint exists.
  int endpoint_index(std::int32_t endpoint) const;
  int num_endpoints() const {
    return num_clients() + 1 + num_aggregators_;
  }

  std::vector<DeviceProfile> fleet_;
  FaultConfig faults_;
  int num_aggregators_ = 0;
  std::mutex seq_m_;
  std::unordered_map<std::uint64_t, std::uint64_t> link_seq_;
  FabricStats stats_;
};

/// In-process simulated transport: stamped envelopes go straight into the
/// destination's mutex-guarded mailbox, so fabric workers running on the
/// shared ThreadPool can send/receive concurrently. Time is virtual — a
/// frame is visible to its receiver immediately, carrying the simulated
/// delivery instant receivers order by.
///
/// Mailboxes are allocated lazily, on first touch: a million-client
/// population (src/pop) keeps descriptors for every client but only the
/// per-round cohort ever exchanges frames, so idle clients cost this
/// transport nothing.
class SimTransport final : public Transport {
 public:
  SimTransport(std::vector<DeviceProfile> fleet, FaultConfig faults,
               int num_aggregators = 0);

  bool send(std::int32_t src, std::int32_t dst, std::string frame,
            double sent_at_s = 0.0) override;
  std::optional<Envelope> try_recv(std::int32_t dst) override;
  std::vector<Envelope> drain(std::int32_t dst) override;
  std::string name() const override { return "sim"; }

 private:
  struct Mailbox {
    std::mutex m;
    std::vector<Envelope> q;
  };

  Mailbox& mailbox(std::int32_t endpoint);

  std::mutex boxes_m_;  ///< guards the map, not the mailboxes
  std::unordered_map<int, std::unique_ptr<Mailbox>> boxes_;
};

/// Which Transport implementation a fabric session runs over.
enum class TransportKind : std::uint8_t {
  Sim,     ///< in-process mailboxes (the default; zero syscalls)
  Socket,  ///< real non-blocking sockets, loopback (net/socket_transport)
};

/// Tuning knobs of the socket transport (ignored by TransportKind::Sim).
struct SocketOptions {
  /// Max bytes consumed per recv() call. Small values force frames to
  /// arrive split across many reads — the incremental reassembly path the
  /// loopback tests exercise on purpose.
  int read_chunk = 4096;
  /// Max bytes per write() call (torn writes); 0 = write whole frames.
  int write_chunk = 0;
};

/// Factory behind SessionConfig::transport: build the requested transport
/// over `fleet` with the shared fault model.
std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          std::vector<DeviceProfile> fleet,
                                          FaultConfig faults,
                                          int num_aggregators = 0,
                                          const SocketOptions& socket = {});

}  // namespace fedtrans
