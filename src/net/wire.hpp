#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fl/weights.hpp"

namespace fedtrans {

/// Versioned, length-prefixed binary wire protocol for the federation
/// fabric. A frame is
///
///   [magic u32][version u16][type u8][flags u8]
///   [round u32][sender i32][receiver i32]
///   [payload_len u64][checksum u64][payload bytes]
///
/// with all integers little-endian and `checksum` an FNV-1a 64 digest
/// covering both the header prefix (everything before the checksum field)
/// and the payload. Decoding validates magic, version, type, length and
/// checksum before touching the payload, so truncated or corrupted frames —
/// including corrupted routing fields — raise `Error` instead of yielding
/// silently corrupt state (the same contract as `common/serial.hpp`, which
/// encodes the payloads themselves).

/// Fabric message kinds, in protocol order within a round.
enum class MsgType : std::uint8_t {
  JoinRound = 1,  ///< server → client: invitation to participate in `round`
  ModelDown = 2,  ///< server → client: global weights + the client's Rng seed
  UpdateUp = 3,   ///< client → server: trained delta + training metrics
  Ack = 4,        ///< client → server: JoinRound accepted
  Abort = 5,      ///< client → server: client gives up on the round
  PartialUp = 6,  ///< shard → root: partial aggregate (bundled updates)
  ShardDown = 7,  ///< root → shard: bundled downlink for one shard's tasks
};

constexpr std::uint32_t kWireMagic = 0x46544E46u;  // "FTNF"
/// v2: JoinRound/ModelDown/UpdateUp carry a per-round task slot id, and
/// ModelDown carries an optional serialized ModelSpec — one client can now
/// train several heterogeneous submodels per round, which is what lets
/// every Strategy (HeteroFL crops, SplitMix base ensembles, FedTrans model
/// families) run over the fabric, not just single-global-model FedAvg.
/// v3: hierarchical aggregation frames — PartialUp (a shard aggregator's
/// bundled partial aggregate, forwarded upstream) and ShardDown (the root's
/// bundled downlink for one shard, fanned out by the leaf) — plus the
/// kFlagRetry header flag marking retry-policy resends of lost frames.
/// v4: deep-tree routing + numeric reduction — ShardDown carries the leaf
/// range its bundle covers (so interior aggregators of a >2-level tree can
/// split it among their children) and a per-task reduce-group key;
/// PartialUp gains a reduced mode whose payload is per-group numeric
/// partial sums (Σ weight·Δ + weight totals) with the per-task entries
/// carrying metrics only.
/// v5: mixed-precision payloads — every serialized tensor's header word
/// carries a storage-dtype tag (byte 1; 0 = f32, 1 = f16, 2 = bf16) and
/// half-tagged tensors ship 2 bytes/element, halving ModelDown/UpdateUp
/// payloads in mixed-precision sessions. F32 tensors encode byte-identically
/// to v4, so the payload format is backward compatible.
/// v6: bandwidth reducers — (a) reduced PartialUp bundles carry a quant
/// byte after the mode byte and may ship their per-group numeric sums
/// int8-quantized (one fp32 scale per group) or f16-tagged instead of
/// dense fp32; (b) ShardDown body tables are content-addressed — each body
/// entry ships either its bytes or, when the sender knows the receiver
/// already caches that exact body, just its 64-bit content hash; (c)
/// ModelDown frames flagged kFlagDelta diff against the client's previous
/// model with a per-tensor {same, additive delta, literal} section instead
/// of shipping the full weights.
constexpr std::uint16_t kWireVersion = 6;
/// Fixed frame header size in bytes (see layout above).
constexpr std::size_t kWireHeaderBytes = 4 + 2 + 1 + 1 + 4 + 4 + 4 + 8 + 8;
/// Sender/receiver id of the federation server (clients are their >= 0 ids).
constexpr std::int32_t kServerId = -1;
/// Endpoint id of shard aggregator `k` in a hierarchical fabric (the root
/// keeps kServerId; leaves take the ids below it).
constexpr std::int32_t aggregator_id(int k) { return -2 - k; }

/// Header flag bits (byte 8 of the frame).
constexpr std::uint8_t kFlagRetry = 0x1;  ///< resend of a lost frame
/// ModelDown only: the weight section is a round-over-round delta against
/// the receiver's previous model (see write_weight_delta), not full weights.
constexpr std::uint8_t kFlagDelta = 0x2;

/// On-wire encoding of a reduced PartialUp's per-group sums (the quant byte
/// that follows the mode byte): dense fp32 (the v5 format), int8 with one
/// fp32 scale per group, or f16-tagged tensors. Interior aggregators always
/// decode back to fp32 before folding, so accumulation stays full-precision
/// regardless of the hop encoding.
constexpr std::uint8_t kPartialQuantF32 = 0;
constexpr std::uint8_t kPartialQuantInt8 = 1;
constexpr std::uint8_t kPartialQuantF16 = 2;

/// One fabric message. A tagged union kept flat for simplicity: only the
/// fields meaningful for `type` are encoded on the wire (see wire.cpp).
struct FabricMessage {
  MsgType type = MsgType::Ack;
  /// Header flag bits (kFlagRetry marks a retry-policy resend).
  std::uint8_t flags = 0;
  std::uint32_t round = 0;
  std::int32_t sender = kServerId;
  std::int32_t receiver = kServerId;

  /// JoinRound/ModelDown/UpdateUp: the round's task slot this frame belongs
  /// to (index into the coordinator's task list). Strategies that train one
  /// model per client use slot == selection index; SplitMix-style
  /// strategies give one slot per (client, base) pair.
  std::int32_t task = 0;

  /// ModelDown: serialized ModelSpec of the payload model, or empty when
  /// the receiver should use its round prototype (single-global-model
  /// strategies broadcast one shared weight blob).
  std::string spec_text;

  /// ModelDown: global weights. UpdateUp: the client's delta.
  WeightSet weights;
  /// ModelDown: state of the per-client Rng forked by the coordinator, so
  /// the client replays the exact local-training randomness the in-process
  /// path would have drawn.
  std::array<std::uint64_t, 4> rng_state{};

  // UpdateUp metrics.
  double avg_loss = 0.0;
  std::int32_t num_samples = 0;
  double macs_used = 0.0;

  /// Abort: human-readable cause ("dropout", ...).
  std::string reason;

  /// ModelDown with kFlagDelta: version stamp of the previous model the
  /// delta section was diffed against (see write_weight_delta). 0 for
  /// full-weight frames.
  std::uint64_t delta_base = 0;
};

/// One task's update inside a PartialUp bundle — the same fields an
/// UpdateUp frame carries, plus the originating client so the root can
/// validate slot/sender matches exactly as it would for direct uplinks.
struct UpdateEntry {
  std::int32_t task = 0;
  std::int32_t client = 0;
  WeightSet delta;
  double avg_loss = 0.0;
  std::int32_t num_samples = 0;
  double macs_used = 0.0;
};

/// One reduce group's numeric partial aggregate inside a reduced PartialUp:
/// the running weighted sum of the group's deltas plus the weight total,
/// exactly the pair every weighted-linear-sum strategy accumulates. Groups
/// merge associatively up the tree (element-wise sum + weight add), folded
/// in ascending min_slot order at every aggregator so the reduction is
/// deterministic for a given tree shape.
struct ReducedGroup {
  /// Strategy reduce key (Strategy::reduce_key): members have
  /// shape-identical deltas and land in the same strategy accumulator.
  std::int32_t key = 0;
  /// Smallest task slot folded into this group (canonical merge order, and
  /// the engine's handle back to a representative task/payload).
  std::int32_t min_slot = 0;
  /// Number of updates folded in.
  std::int32_t count = 0;
  /// Σ reduce-weight (num_samples) over the folded updates.
  double weight = 0.0;
  /// Σ num_samples·Δ over the folded updates.
  WeightSet sum;
};

/// A shard aggregator's partial aggregate: every update of its task
/// partition that survived the client uplinks, bundled into one upstream
/// frame. In verbatim mode (`reduced == false`, the default) entries ride
/// with their deltas bit-exact — the numeric reduction happens at the
/// engine in fixed task order, which is what keeps tree rounds bitwise
/// identical to flat ones. In reduced mode the deltas are pre-summed into
/// `groups` and the entries carry metrics only (empty delta).
struct PartialUpdate {
  std::uint32_t round = 0;
  std::int32_t sender = kServerId;
  std::int32_t shard = 0;
  bool reduced = false;
  /// Wire encoding of the group sums (kPartialQuant*; reduced mode only).
  /// In-memory sums are always fp32 — the codec quantizes at encode and
  /// dequantizes at decode, so merges accumulate full-precision.
  std::uint8_t quant = kPartialQuantF32;
  std::vector<UpdateEntry> entries;
  std::vector<ReducedGroup> groups;  ///< reduced mode only
};

/// One task's downlink inside a ShardDown bundle. `body` indexes the
/// bundle's payload-body table: the referenced body holds the exact
/// [spec string][weights] section a flat ModelDown would carry, so leaves
/// reconstruct byte-identical per-client ModelDown frames. `reduce` is the
/// task's numeric reduce-group key (-1 = verbatim round; the leaf forwards
/// the update unreduced).
struct DownlinkTask {
  std::int32_t task = 0;
  std::int32_t client = 0;
  std::uint32_t body = 0;
  std::int32_t reduce = -1;
  std::array<std::uint64_t, 4> rng_state{};
};

/// A bundled downlink travelling down the aggregation tree: a table of
/// distinct payload bodies (each encoded once — ladder strategies ship one
/// submodel per capacity level per shard, single-model strategies one
/// weight blob) plus the covered task list referencing them.
/// `leaf_lo`/`leaf_hi` is the tree-routing metadata: the half-open range of
/// leaf partitions this bundle covers. A leaf-level bundle covers exactly
/// one partition (`shard`, with leaf_hi == leaf_lo + 1); an interior node
/// receiving a wider range splits the bundle among its children. `shard`
/// is the destination partition for leaf bundles and -1 for interior ones.
struct ShardDownlink {
  std::uint32_t round = 0;
  std::int32_t shard = 0;
  std::int32_t leaf_lo = 0;
  std::int32_t leaf_hi = 1;
  std::vector<std::string> bodies;
  std::vector<DownlinkTask> tasks;
  /// Decode-side only (never encoded): missing[i] != 0 marks a body the
  /// sender elided (shipping only its content hash) that the receiver's
  /// broadcast cache could not reconstruct. Tasks referencing a missing
  /// body are lost for the round — routers must drop them (they surface as
  /// LostDown), not treat the empty placeholder as payload.
  std::vector<std::uint8_t> missing;
};

/// Content-addressed store of broadcast bodies an aggregator has already
/// received, letting repeat ShardDown frames ship a 64-bit hash instead of
/// re-shipping the body bytes (wire v6 (b)). Bodies are keyed by their
/// FNV-1a content hash; to bound growth the cache keeps one body per model
/// spec (the body's leading length-prefixed spec string), so a new round's
/// weights for the same spec evict the previous round's body. Senders
/// mirror this eviction rule in their per-receiver "known" maps, so an
/// elision decision is only made for hashes the receiver still holds.
class BroadcastCache {
 public:
  /// Record a body that arrived shipped in full. Idempotent — duplicate
  /// frames (retry storms, network dup faults) re-put the same bytes.
  void put(const std::string& body);
  /// Look up a body by content hash; nullptr on miss.
  const std::string* find(std::uint64_t hash) const;

  std::size_t size() const { return by_hash_.size(); }

 private:
  /// spec digest → content hash currently cached for that spec.
  std::unordered_map<std::uint64_t, std::uint64_t> by_spec_;
  /// content hash → body bytes.
  std::unordered_map<std::uint64_t, std::string> by_hash_;
};

/// Content hash of a broadcast body (the elision key on the wire).
std::uint64_t broadcast_body_hash(const std::string& body);
/// Digest of the body's leading length-prefixed spec string — the cache
/// eviction key (one cached body per distinct model spec). Falls back to
/// the content hash for bodies too short to carry a spec prefix.
std::uint64_t broadcast_body_spec_digest(const std::string& body);

/// FNV-1a 64-bit digest (the frame checksum).
std::uint64_t fnv1a64(const void* data, std::size_t n);

/// Serialize a message into a self-contained frame.
std::string encode_message(const FabricMessage& msg);

/// Low-level framing: wrap an already-encoded payload in a checksummed
/// frame. Lets a broadcaster serialize a large shared payload section (the
/// weight set of a ModelDown) once and reuse it across receivers instead
/// of deep-copying the WeightSet into a FabricMessage per client.
/// `payload` must follow the per-type layout encode_message produces.
std::string encode_frame(MsgType type, std::uint32_t round,
                         std::int32_t sender, std::int32_t receiver,
                         const std::string& payload, std::uint8_t flags = 0);

/// Parse a frame produced by encode_message. Throws `Error` on short
/// buffers, bad magic/version/type, length mismatch, checksum mismatch, or
/// a payload that does not decode cleanly. PartialUp/ShardDown bundles have
/// their own decoders below. A ModelDown flagged kFlagDelta requires the
/// receiver's previous model: `prev` supplies it and `prev_version` its
/// version stamp, which must match the frame's delta_base (a mismatch — or
/// a delta frame with no `prev` at all — throws, so desynchronized senders
/// surface as rejected frames, never as silently wrong weights).
FabricMessage decode_message(std::string_view frame,
                             const WeightSet* prev = nullptr,
                             std::uint64_t prev_version = 0);

/// Bundle codecs for the hierarchical frames (validated exactly like
/// decode_message: magic, version, type, length, checksum, clean payload).
/// encode_shard_down's optional `elide` mask (parallel to d.bodies)
/// replaces marked bodies with their content hash on the wire — callers
/// may only mark bodies they know the receiver's BroadcastCache holds.
/// decode_shard_down reconstructs elided bodies from `cache` (and puts
/// fully-shipped ones into it); without a cache, or on a cache miss, the
/// affected bodies come back empty with d.missing[i] set.
std::string encode_partial_up(std::uint32_t round, std::int32_t sender,
                              std::int32_t receiver, const PartialUpdate& p,
                              std::uint8_t flags = 0);
PartialUpdate decode_partial_up(std::string_view frame);
std::string encode_shard_down(std::uint32_t round, std::int32_t sender,
                              std::int32_t receiver, const ShardDownlink& d,
                              std::uint8_t flags = 0,
                              const std::vector<std::uint8_t>* elide = nullptr);
ShardDownlink decode_shard_down(std::string_view frame,
                                BroadcastCache* cache = nullptr);

/// Cheap peek at a frame's message type (validates magic and the type
/// byte only) — lets a mixed-traffic receiver route a frame to the right
/// decoder without a full parse.
MsgType frame_type(std::string_view frame);

/// Total frame size implied by a buffer holding at least the fixed header;
/// lets stream consumers split concatenated frames. Throws on bad magic or
/// a buffer shorter than the header.
std::size_t frame_size(std::string_view buffer);

/// Result of probing a byte stream for a complete frame. A short buffer is
/// a normal streaming condition (the peer's next write is still in flight),
/// not corruption — stream consumers must wait for more bytes, while
/// `frame_size`'s throwing contract stays reserved for whole-frame buffers.
enum class FrameStatus : std::uint8_t {
  FrameReady,     ///< the buffer holds at least one complete frame
  NeedMoreBytes,  ///< header or payload still incomplete — keep reading
};

/// Probe `buffer` (the unconsumed prefix of a byte stream) for one complete
/// frame. Returns NeedMoreBytes while the fixed header — or the payload it
/// announces — has not fully arrived; returns FrameReady and sets
/// `frame_bytes` to the frame's total size once it has. `frame_bytes` is
/// also set (to the implied total) when the header is complete but the
/// payload is short, and left 0 while the header itself is partial. Still
/// throws on bad magic or a corrupt length field: those are stream
/// corruption, which waiting cannot fix.
FrameStatus try_frame_size(std::string_view buffer, std::size_t& frame_bytes);

/// Incremental frame reassembly for stream transports: feed raw bytes as
/// they arrive (partial headers, split payloads, several frames per read —
/// any segmentation), pop complete frames out. The assembler only splits
/// the stream on length-prefix boundaries; each popped frame still goes
/// through the full decode_message/decode_partial_up validation (checksum
/// included). Feeding bytes that cannot start a frame (bad magic, corrupt
/// length) throws `Error` from next_frame — a byte stream that lost sync
/// cannot be resynchronized and the connection must be torn down.
class FrameAssembler {
 public:
  /// Append `n` raw stream bytes.
  void feed(const char* data, std::size_t n);
  void feed(std::string_view bytes) { feed(bytes.data(), bytes.size()); }

  /// Pop the next complete frame, or nullopt while more bytes are needed.
  std::optional<std::string> next_frame();

  /// Bytes buffered but not yet popped as frames.
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix, compacted opportunistically
};

/// WeightSet codec shared by ModelDown/UpdateUp payloads (tensor count,
/// then each tensor's shape + raw fp32 data — bit-exact round trip).
void write_weight_set(std::ostream& os, const WeightSet& ws);
WeightSet read_weight_set(std::istream& is);

/// Round-over-round weight-delta codec (wire v6 (c), the section a
/// ModelDown flagged kFlagDelta carries instead of write_weight_set):
///
///   [base_version u64][count u32]
///   [per tensor: mode u8, then for Delta/Literal the serialized tensor]
///
/// with per-tensor modes Same (receiver reuses prev[i] verbatim), Delta
/// (receiver adds the shipped fp32 difference to prev[i]) and Literal (the
/// tensor ships in full, dtype tag preserved). The writer proves bitwise
/// reconstruction before choosing Same or Delta — Same requires prev[i]
/// and next[i] byte-identical (data and dtype tag), Delta requires
/// prev[i] + (next[i] − prev[i]) to round-trip to next[i]'s exact bits on
/// every element — and falls back to Literal otherwise, so the decoded set
/// is always bit-exact to `next` no matter which modes were picked.
/// `prev` and `next` must have the same tensor count and shapes.
void write_weight_delta(std::ostream& os, std::uint64_t base_version,
                        const WeightSet& prev, const WeightSet& next);
/// Reconstruct `next` from the delta section and the receiver's previous
/// model. Validates tensor count/shapes against `prev` and returns the
/// frame's base_version through `base_version`.
WeightSet read_weight_delta(std::istream& is, const WeightSet& prev,
                            std::uint64_t& base_version);

}  // namespace fedtrans
