#include "net/wire.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <sstream>
#include <streambuf>

#include "common/check.hpp"
#include "common/serial.hpp"

namespace fedtrans {

namespace {

/// Read-only streambuf over a borrowed byte range: lets the decoder parse a
/// frame's payload in place instead of copying a model-sized blob into a
/// stringstream first. Seekable, so serial.hpp's stream_remaining guard
/// stays active.
class ViewBuf : public std::streambuf {
 public:
  explicit ViewBuf(std::string_view v) {
    char* p = const_cast<char*>(v.data());  // never written: get area only
    setg(p, p, p + v.size());
  }

 protected:
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override {
    if (!(which & std::ios_base::in)) return pos_type(off_type(-1));
    char* base = eback();
    char* to = dir == std::ios_base::beg   ? base + off
               : dir == std::ios_base::cur ? gptr() + off
                                           : egptr() + off;
    if (to < base || to > egptr()) return pos_type(off_type(-1));
    setg(base, to, egptr());
    return pos_type(to - base);
  }
  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override {
    return seekoff(off_type(pos), std::ios_base::beg, which);
  }
};

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void write_weight_set(std::ostream& os, const WeightSet& ws) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(ws.size()));
  for (const Tensor& t : ws) t.save(os);
}

WeightSet read_weight_set(std::istream& is) {
  const auto n = read_pod<std::uint32_t>(is);
  WeightSet ws;
  ws.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ws.push_back(Tensor::load(is));
  return ws;
}

namespace {

/// Reduced-group sum codec for quantized PartialUp bundles (wire v6 (a)).
/// Int8 layout: one fp32 scale for the whole group, then per tensor
/// [rank u32][dims i32...] and numel int8 codes with v ≈ code·scale.
void write_group_sum_int8(std::ostream& os, const WeightSet& sum) {
  float mx = 0.0f;
  for (const Tensor& t : sum)
    for (std::int64_t i = 0; i < t.numel(); ++i)
      mx = std::max(mx, std::fabs(t[i]));
  const float scale = mx / 127.0f;
  write_pod(os, scale);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(sum.size()));
  for (const Tensor& t : sum) {
    const auto& shape = t.shape();
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(shape.size()));
    for (const int dim : shape) write_pod<std::int32_t>(os, dim);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      const float q =
          scale > 0.0f
              ? std::min(127.0f, std::max(-127.0f, std::round(t[i] / scale)))
              : 0.0f;
      write_pod<std::int8_t>(os, static_cast<std::int8_t>(q));
    }
  }
}

WeightSet read_group_sum_int8(std::istream& is) {
  const auto scale = read_pod<float>(is);
  FT_CHECK_MSG(std::isfinite(scale) && scale >= 0.0f,
               "int8 PartialUp group scale corrupt: " << scale);
  const auto n = read_pod<std::uint32_t>(is);
  WeightSet sum;
  sum.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto rank = read_pod<std::uint32_t>(is);
    FT_CHECK_MSG(rank <= 8, "int8 PartialUp tensor rank corrupt: " << rank);
    std::vector<int> shape(rank);
    for (std::uint32_t k = 0; k < rank; ++k) {
      shape[k] = read_pod<std::int32_t>(is);
      FT_CHECK_MSG(shape[k] > 0, "int8 PartialUp tensor dim corrupt");
    }
    Tensor t(shape);
    for (std::int64_t j = 0; j < t.numel(); ++j)
      t[j] = static_cast<float>(read_pod<std::int8_t>(is)) * scale;
    sum.push_back(std::move(t));
  }
  return sum;
}

void write_group_sum(std::ostream& os, const WeightSet& sum,
                     std::uint8_t quant) {
  switch (quant) {
    case kPartialQuantF32: write_weight_set(os, sum); break;
    case kPartialQuantInt8: write_group_sum_int8(os, sum); break;
    case kPartialQuantF16: {
      WeightSet half = sum;
      for (Tensor& t : half) t.quantize_storage(Dtype::F16);
      write_weight_set(os, half);
      break;
    }
    default: FT_CHECK_MSG(false, "PartialUp quant byte invalid: " << int{quant});
  }
}

WeightSet read_group_sum(std::istream& is, std::uint8_t quant) {
  switch (quant) {
    case kPartialQuantF32: return read_weight_set(is);
    case kPartialQuantInt8: return read_group_sum_int8(is);
    case kPartialQuantF16: {
      WeightSet sum = read_weight_set(is);
      // Values sit on the f16 grid; retag to fp32 so downstream merges
      // accumulate (and re-encode) from a clean full-precision set.
      for (Tensor& t : sum) t.quantize_storage(Dtype::F32);
      return sum;
    }
    default: FT_CHECK_MSG(false, "PartialUp quant byte corrupt: " << int{quant});
  }
  return {};
}

}  // namespace

namespace {

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MsgType::JoinRound) &&
         t <= static_cast<std::uint8_t>(MsgType::ShardDown);
}

/// Shared header validation for every decoder: checks magic, version, type,
/// length and checksum, returns the parsed fixed header fields and the
/// payload view.
struct FrameHeader {
  MsgType type;
  std::uint8_t flags;
  std::uint32_t round;
  std::int32_t sender;
  std::int32_t receiver;
  std::string_view payload;
};

FrameHeader parse_header(std::string_view frame) {
  FT_CHECK_MSG(frame.size() >= kWireHeaderBytes,
               "wire frame truncated: " << frame.size() << " bytes < "
                                        << kWireHeaderBytes << " header");
  std::istringstream is(std::string(frame.substr(0, kWireHeaderBytes)),
                        std::ios::binary);
  FT_CHECK_MSG(read_pod<std::uint32_t>(is) == kWireMagic, "bad wire magic");
  const auto version = read_pod<std::uint16_t>(is);
  FT_CHECK_MSG(version == kWireVersion,
               "unsupported wire version " << version);
  const auto raw_type = read_pod<std::uint8_t>(is);
  FT_CHECK_MSG(valid_type(raw_type),
               "unknown wire message type " << int{raw_type});

  FrameHeader h;
  h.type = static_cast<MsgType>(raw_type);
  h.flags = read_pod<std::uint8_t>(is);
  h.round = read_pod<std::uint32_t>(is);
  h.sender = read_pod<std::int32_t>(is);
  h.receiver = read_pod<std::int32_t>(is);
  const auto payload_len = read_pod<std::uint64_t>(is);
  const auto checksum = read_pod<std::uint64_t>(is);

  FT_CHECK_MSG(frame.size() - kWireHeaderBytes == payload_len,
               "wire frame length mismatch: header says "
                   << payload_len << " payload bytes, buffer has "
                   << frame.size() - kWireHeaderBytes);
  h.payload = frame.substr(kWireHeaderBytes);
  std::uint64_t digest = fnv1a64(frame.data(), kWireHeaderBytes - 8);
  digest ^= fnv1a64(h.payload.data(), h.payload.size());
  FT_CHECK_MSG(digest == checksum,
               "wire checksum mismatch — corrupted frame");
  return h;
}

/// Rejects trailing garbage after a payload decode (a long frame is as
/// malformed as a short one).
void expect_consumed(std::istream& is) {
  is.peek();
  FT_CHECK_MSG(is.eof(), "wire payload has trailing bytes");
}

std::string encode_payload(const FabricMessage& msg) {
  std::ostringstream os(std::ios::binary);
  switch (msg.type) {
    case MsgType::ModelDown:
      write_pod(os, msg.task);
      write_string(os, msg.spec_text);
      write_weight_set(os, msg.weights);
      write_pod(os, msg.rng_state);
      break;
    case MsgType::UpdateUp:
      write_pod(os, msg.task);
      write_weight_set(os, msg.weights);
      write_pod(os, msg.avg_loss);
      write_pod(os, msg.num_samples);
      write_pod(os, msg.macs_used);
      break;
    case MsgType::Abort:
      write_string(os, msg.reason);
      break;
    case MsgType::JoinRound:
      write_pod(os, msg.task);
      break;
    case MsgType::Ack:
      break;  // header-only
    case MsgType::PartialUp:
    case MsgType::ShardDown:
      FT_CHECK_MSG(false, "bundle frames use encode_partial_up / "
                          "encode_shard_down, not encode_message");
  }
  return os.str();
}

void decode_payload(FabricMessage& msg, std::string_view payload,
                    const WeightSet* prev, std::uint64_t prev_version) {
  ViewBuf buf(payload);
  std::istream is(&buf);
  switch (msg.type) {
    case MsgType::ModelDown:
      msg.task = read_pod<std::int32_t>(is);
      msg.spec_text = read_string(is);
      if (msg.flags & kFlagDelta) {
        // A delta frame is only decodable against the exact model version
        // it was diffed from; anything else is a sender/receiver desync
        // that must surface as a rejected frame, not as wrong weights.
        FT_CHECK_MSG(prev != nullptr,
                     "delta ModelDown but receiver holds no previous model");
        msg.weights = read_weight_delta(is, *prev, msg.delta_base);
        FT_CHECK_MSG(msg.delta_base == prev_version,
                     "delta ModelDown base version "
                         << msg.delta_base << " != receiver's "
                         << prev_version);
      } else {
        msg.weights = read_weight_set(is);
      }
      msg.rng_state = read_pod<std::array<std::uint64_t, 4>>(is);
      break;
    case MsgType::UpdateUp:
      msg.task = read_pod<std::int32_t>(is);
      msg.weights = read_weight_set(is);
      msg.avg_loss = read_pod<double>(is);
      msg.num_samples = read_pod<std::int32_t>(is);
      msg.macs_used = read_pod<double>(is);
      break;
    case MsgType::Abort:
      msg.reason = read_string(is);
      break;
    case MsgType::JoinRound:
      msg.task = read_pod<std::int32_t>(is);
      break;
    case MsgType::Ack:
      break;
    case MsgType::PartialUp:
    case MsgType::ShardDown:
      FT_CHECK_MSG(false, "bundle frames use decode_partial_up / "
                          "decode_shard_down, not decode_message");
  }
  expect_consumed(is);
}

}  // namespace

std::string encode_frame(MsgType type, std::uint32_t round,
                         std::int32_t sender, std::int32_t receiver,
                         const std::string& payload, std::uint8_t flags) {
  // Assemble via string appends — one allocation, one payload copy — since
  // broadcast calls this once per client with a model-sized payload.
  std::string frame;
  frame.reserve(kWireHeaderBytes + payload.size());
  auto append_pod = [&frame](const auto& v) {
    frame.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  append_pod(kWireMagic);
  append_pod(kWireVersion);
  append_pod(static_cast<std::uint8_t>(type));
  append_pod(flags);
  append_pod(round);
  append_pod(sender);
  append_pod(receiver);
  append_pod(std::uint64_t{payload.size()});
  // The digest covers the header prefix too, so corruption of the routing
  // fields (round/sender/receiver) is caught, not just payload damage.
  std::uint64_t digest = fnv1a64(frame.data(), kWireHeaderBytes - 8);
  digest ^= fnv1a64(payload.data(), payload.size());
  append_pod(digest);
  frame.append(payload);
  return frame;
}

std::string encode_message(const FabricMessage& msg) {
  return encode_frame(msg.type, msg.round, msg.sender, msg.receiver,
                      encode_payload(msg), msg.flags);
}

std::size_t frame_size(std::string_view buffer) {
  FT_CHECK_MSG(buffer.size() >= kWireHeaderBytes,
               "wire buffer shorter than frame header ("
                   << buffer.size() << " < " << kWireHeaderBytes << ")");
  std::istringstream is(std::string(buffer.substr(0, kWireHeaderBytes)),
                        std::ios::binary);
  FT_CHECK_MSG(read_pod<std::uint32_t>(is) == kWireMagic,
               "bad wire magic");
  (void)read_pod<std::uint16_t>(is);  // version
  (void)read_pod<std::uint8_t>(is);   // type
  (void)read_pod<std::uint8_t>(is);   // flags
  (void)read_pod<std::uint32_t>(is);  // round
  (void)read_pod<std::int32_t>(is);   // sender
  (void)read_pod<std::int32_t>(is);   // receiver
  const auto payload_len = read_pod<std::uint64_t>(is);
  // A corrupt length field must throw here, not wrap size_t into a bogus
  // small frame size that would make a stream consumer mis-split (or never
  // advance past) the buffer.
  FT_CHECK_MSG(payload_len <=
                   std::numeric_limits<std::size_t>::max() - kWireHeaderBytes,
               "wire frame length field corrupt: " << payload_len);
  return kWireHeaderBytes + static_cast<std::size_t>(payload_len);
}

FrameStatus try_frame_size(std::string_view buffer, std::size_t& frame_bytes) {
  frame_bytes = 0;
  if (buffer.size() >= sizeof(std::uint32_t)) {
    // Validate the magic as soon as it is readable: a stream that does not
    // open with it has lost framing sync, and no amount of further bytes
    // will recover it.
    std::uint32_t magic = 0;
    std::memcpy(&magic, buffer.data(), sizeof(magic));
    FT_CHECK_MSG(magic == kWireMagic, "bad wire magic");
  }
  if (buffer.size() < kWireHeaderBytes) return FrameStatus::NeedMoreBytes;
  frame_bytes = frame_size(buffer.substr(0, kWireHeaderBytes));
  return buffer.size() >= frame_bytes ? FrameStatus::FrameReady
                                      : FrameStatus::NeedMoreBytes;
}

void FrameAssembler::feed(const char* data, std::size_t n) {
  if (n == 0) return;
  // Compact the consumed prefix before growing, so the buffer never holds
  // more than one partial frame's worth of dead bytes.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

std::optional<std::string> FrameAssembler::next_frame() {
  const std::string_view rest = std::string_view(buf_).substr(pos_);
  std::size_t total = 0;
  if (try_frame_size(rest, total) == FrameStatus::NeedMoreBytes)
    return std::nullopt;
  std::string frame(rest.substr(0, total));
  pos_ += total;
  return frame;
}

FabricMessage decode_message(std::string_view frame, const WeightSet* prev,
                             std::uint64_t prev_version) {
  const FrameHeader h = parse_header(frame);
  FabricMessage msg;
  msg.type = h.type;
  msg.flags = h.flags;
  msg.round = h.round;
  msg.sender = h.sender;
  msg.receiver = h.receiver;
  decode_payload(msg, h.payload, prev, prev_version);
  return msg;
}

MsgType frame_type(std::string_view frame) {
  FT_CHECK_MSG(frame.size() >= kWireHeaderBytes,
               "wire frame truncated: " << frame.size() << " bytes < "
                                        << kWireHeaderBytes << " header");
  std::uint32_t magic = 0;
  std::memcpy(&magic, frame.data(), sizeof(magic));
  FT_CHECK_MSG(magic == kWireMagic, "bad wire magic");
  const auto raw_type = static_cast<std::uint8_t>(frame[6]);
  FT_CHECK_MSG(valid_type(raw_type),
               "unknown wire message type " << int{raw_type});
  return static_cast<MsgType>(raw_type);
}

std::string encode_partial_up(std::uint32_t round, std::int32_t sender,
                              std::int32_t receiver, const PartialUpdate& p,
                              std::uint8_t flags) {
  std::ostringstream os(std::ios::binary);
  write_pod(os, p.shard);
  write_pod<std::uint8_t>(os, p.reduced ? 1 : 0);
  if (p.reduced) {
    FT_CHECK_MSG(p.quant <= kPartialQuantF16,
                 "PartialUp quant byte invalid: " << int{p.quant});
    write_pod<std::uint8_t>(os, p.quant);
  }
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(p.entries.size()));
  for (const UpdateEntry& e : p.entries) {
    write_pod(os, e.task);
    write_pod(os, e.client);
    write_weight_set(os, e.delta);
    write_pod(os, e.avg_loss);
    write_pod(os, e.num_samples);
    write_pod(os, e.macs_used);
  }
  if (p.reduced) {
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(p.groups.size()));
    for (const ReducedGroup& g : p.groups) {
      write_pod(os, g.key);
      write_pod(os, g.min_slot);
      write_pod(os, g.count);
      write_pod(os, g.weight);
      write_group_sum(os, g.sum, p.quant);
    }
  }
  return encode_frame(MsgType::PartialUp, round, sender, receiver, os.str(),
                      flags);
}

PartialUpdate decode_partial_up(std::string_view frame) {
  const FrameHeader h = parse_header(frame);
  FT_CHECK_MSG(h.type == MsgType::PartialUp,
               "expected a PartialUp frame, got type "
                   << int{static_cast<std::uint8_t>(h.type)});
  ViewBuf buf(h.payload);
  std::istream is(&buf);
  PartialUpdate p;
  p.round = h.round;
  p.sender = h.sender;
  p.shard = read_pod<std::int32_t>(is);
  const auto mode = read_pod<std::uint8_t>(is);
  FT_CHECK_MSG(mode <= 1, "PartialUp mode byte corrupt: " << int{mode});
  p.reduced = mode == 1;
  if (p.reduced) {
    p.quant = read_pod<std::uint8_t>(is);
    FT_CHECK_MSG(p.quant <= kPartialQuantF16,
                 "PartialUp quant byte corrupt: " << int{p.quant});
  }
  const auto n = read_pod<std::uint32_t>(is);
  p.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    UpdateEntry e;
    e.task = read_pod<std::int32_t>(is);
    e.client = read_pod<std::int32_t>(is);
    e.delta = read_weight_set(is);
    e.avg_loss = read_pod<double>(is);
    e.num_samples = read_pod<std::int32_t>(is);
    e.macs_used = read_pod<double>(is);
    // Reduced bundles carry metrics only: a delta here means the encoder
    // and the mode byte disagree — reject rather than double-count.
    FT_CHECK_MSG(!p.reduced || e.delta.empty(),
                 "reduced PartialUp entry carries a delta");
    p.entries.push_back(std::move(e));
  }
  if (p.reduced) {
    const auto ng = read_pod<std::uint32_t>(is);
    p.groups.reserve(ng);
    for (std::uint32_t i = 0; i < ng; ++i) {
      ReducedGroup g;
      g.key = read_pod<std::int32_t>(is);
      g.min_slot = read_pod<std::int32_t>(is);
      g.count = read_pod<std::int32_t>(is);
      g.weight = read_pod<double>(is);
      g.sum = read_group_sum(is, p.quant);
      p.groups.push_back(std::move(g));
    }
  }
  expect_consumed(is);
  return p;
}

std::string encode_shard_down(std::uint32_t round, std::int32_t sender,
                              std::int32_t receiver, const ShardDownlink& d,
                              std::uint8_t flags,
                              const std::vector<std::uint8_t>* elide) {
  FT_CHECK_MSG(elide == nullptr || elide->size() == d.bodies.size(),
               "ShardDown elide mask size " << (elide ? elide->size() : 0)
                                            << " != body count "
                                            << d.bodies.size());
  std::ostringstream os(std::ios::binary);
  write_pod(os, d.shard);
  write_pod(os, d.leaf_lo);
  write_pod(os, d.leaf_hi);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(d.bodies.size()));
  for (std::size_t i = 0; i < d.bodies.size(); ++i) {
    const bool skip = elide != nullptr && (*elide)[i] != 0;
    write_pod<std::uint8_t>(os, skip ? 0 : 1);  // shipped flag
    if (skip)
      write_pod<std::uint64_t>(os, broadcast_body_hash(d.bodies[i]));
    else
      write_string(os, d.bodies[i]);
  }
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(d.tasks.size()));
  for (const DownlinkTask& t : d.tasks) {
    write_pod(os, t.task);
    write_pod(os, t.client);
    write_pod(os, t.body);
    write_pod(os, t.reduce);
    write_pod(os, t.rng_state);
  }
  return encode_frame(MsgType::ShardDown, round, sender, receiver,
                      os.str(), flags);
}

ShardDownlink decode_shard_down(std::string_view frame,
                                BroadcastCache* cache) {
  const FrameHeader h = parse_header(frame);
  FT_CHECK_MSG(h.type == MsgType::ShardDown,
               "expected a ShardDown frame, got type "
                   << int{static_cast<std::uint8_t>(h.type)});
  ViewBuf buf(h.payload);
  std::istream is(&buf);
  ShardDownlink d;
  d.round = h.round;
  d.shard = read_pod<std::int32_t>(is);
  d.leaf_lo = read_pod<std::int32_t>(is);
  d.leaf_hi = read_pod<std::int32_t>(is);
  FT_CHECK_MSG(d.leaf_lo >= 0 && d.leaf_hi > d.leaf_lo,
               "ShardDown leaf range corrupt: [" << d.leaf_lo << ", "
                                                 << d.leaf_hi << ")");
  const auto nb = read_pod<std::uint32_t>(is);
  d.bodies.reserve(nb);
  d.missing.assign(nb, 0);
  for (std::uint32_t i = 0; i < nb; ++i) {
    const auto shipped = read_pod<std::uint8_t>(is);
    FT_CHECK_MSG(shipped <= 1,
                 "ShardDown body flag corrupt: " << int{shipped});
    if (shipped) {
      d.bodies.push_back(read_string(is));
      // Cache in arrival order: a later same-spec body in this very bundle
      // evicts an earlier one exactly as the sender's known-map replay does.
      if (cache != nullptr) cache->put(d.bodies.back());
    } else {
      const auto hash = read_pod<std::uint64_t>(is);
      const std::string* hit = cache != nullptr ? cache->find(hash) : nullptr;
      if (hit != nullptr) {
        d.bodies.push_back(*hit);
      } else {
        // Sender believed we cached this body and we did not — the tasks
        // referencing it are lost for the round (routers drop them), but
        // the frame itself is well-formed.
        d.bodies.emplace_back();
        d.missing[i] = 1;
      }
    }
  }
  const auto nt = read_pod<std::uint32_t>(is);
  d.tasks.reserve(nt);
  for (std::uint32_t i = 0; i < nt; ++i) {
    DownlinkTask t;
    t.task = read_pod<std::int32_t>(is);
    t.client = read_pod<std::int32_t>(is);
    t.body = read_pod<std::uint32_t>(is);
    t.reduce = read_pod<std::int32_t>(is);
    t.rng_state = read_pod<std::array<std::uint64_t, 4>>(is);
    FT_CHECK_MSG(t.body < nb, "ShardDown task references body " << t.body
                                  << " of " << nb);
    d.tasks.push_back(t);
  }
  expect_consumed(is);
  return d;
}

std::uint64_t broadcast_body_hash(const std::string& body) {
  return fnv1a64(body.data(), body.size());
}

std::uint64_t broadcast_body_spec_digest(const std::string& body) {
  // Body layout: [spec string (u64 length + bytes)][weight section]. The
  // digest covers the spec bytes only, so all rounds of the same model
  // land on one cache slot.
  if (body.size() >= sizeof(std::uint64_t)) {
    std::uint64_t len = 0;
    std::memcpy(&len, body.data(), sizeof(len));
    if (len <= body.size() - sizeof(len))
      return fnv1a64(body.data() + sizeof(len),
                     static_cast<std::size_t>(len));
  }
  return broadcast_body_hash(body);
}

void BroadcastCache::put(const std::string& body) {
  const std::uint64_t hash = broadcast_body_hash(body);
  const std::uint64_t spec = broadcast_body_spec_digest(body);
  auto it = by_spec_.find(spec);
  if (it != by_spec_.end()) {
    if (it->second == hash) return;  // duplicate frame — already cached
    by_hash_.erase(it->second);
    it->second = hash;
  } else {
    by_spec_.emplace(spec, hash);
  }
  by_hash_[hash] = body;
}

const std::string* BroadcastCache::find(std::uint64_t hash) const {
  const auto it = by_hash_.find(hash);
  return it == by_hash_.end() ? nullptr : &it->second;
}

namespace {

/// Per-tensor delta modes (wire v6 (c)).
constexpr std::uint8_t kDeltaSame = 0;     ///< receiver reuses prev[i]
constexpr std::uint8_t kDeltaAdd = 1;      ///< fp32 difference, added to prev[i]
constexpr std::uint8_t kDeltaLiteral = 2;  ///< full tensor, dtype preserved

bool bits_equal(float a, float b) {
  return std::memcmp(&a, &b, sizeof(float)) == 0;
}

}  // namespace

void write_weight_delta(std::ostream& os, std::uint64_t base_version,
                        const WeightSet& prev, const WeightSet& next) {
  FT_CHECK_MSG(prev.size() == next.size(),
               "weight-delta tensor count mismatch: prev "
                   << prev.size() << " vs next " << next.size());
  write_pod(os, base_version);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(next.size()));
  for (std::size_t i = 0; i < next.size(); ++i) {
    const Tensor& p = prev[i];
    const Tensor& n = next[i];
    FT_CHECK_MSG(p.same_shape(n),
                 "weight-delta tensor " << i << " shape mismatch");
    const std::size_t bytes =
        static_cast<std::size_t>(n.numel()) * sizeof(float);
    if (p.dtype() == n.dtype() &&
        std::memcmp(p.data(), n.data(), bytes) == 0) {
      write_pod<std::uint8_t>(os, kDeltaSame);
      continue;
    }
    // Additive mode is only sound when the receiver's prev + diff provably
    // reproduces next's exact bits on every element (and both sides are
    // plain fp32, so no storage grid re-snaps the reconstruction).
    if (p.dtype() == Dtype::F32 && n.dtype() == Dtype::F32) {
      Tensor d = n;
      bool exact = true;
      for (std::int64_t j = 0; j < n.numel() && exact; ++j) {
        d[j] = n[j] - p[j];
        exact = bits_equal(p[j] + d[j], n[j]);
      }
      if (exact) {
        write_pod<std::uint8_t>(os, kDeltaAdd);
        d.save(os);
        continue;
      }
    }
    write_pod<std::uint8_t>(os, kDeltaLiteral);
    n.save(os);
  }
}

WeightSet read_weight_delta(std::istream& is, const WeightSet& prev,
                            std::uint64_t& base_version) {
  base_version = read_pod<std::uint64_t>(is);
  const auto n = read_pod<std::uint32_t>(is);
  FT_CHECK_MSG(n == prev.size(),
               "weight-delta tensor count " << n
                   << " != previous model's " << prev.size());
  WeightSet out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto mode = read_pod<std::uint8_t>(is);
    switch (mode) {
      case kDeltaSame:
        out.push_back(prev[i]);
        break;
      case kDeltaAdd: {
        Tensor d = Tensor::load(is);
        FT_CHECK_MSG(d.same_shape(prev[i]),
                     "weight-delta tensor " << i << " shape mismatch");
        Tensor r = prev[i];
        for (std::int64_t j = 0; j < r.numel(); ++j) r[j] += d[j];
        out.push_back(std::move(r));
        break;
      }
      case kDeltaLiteral:
        out.push_back(Tensor::load(is));
        FT_CHECK_MSG(out.back().same_shape(prev[i]),
                     "weight-delta tensor " << i << " shape mismatch");
        break;
      default:
        FT_CHECK_MSG(false, "weight-delta mode byte corrupt: " << int{mode});
    }
  }
  return out;
}

}  // namespace fedtrans
