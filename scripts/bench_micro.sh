#!/usr/bin/env bash
# Runs the google-benchmark binaries (bench_micro_ops + bench_fabric_throughput)
# and distills the result into BENCH_micro_ops.json — one record per
# benchmark: {op, shape, ms, gflops?, counters...} — so successive PRs have
# a perf trajectory to compare against.
#
# Usage: scripts/bench_micro.sh [filter-regex]
#   BUILD_DIR  build directory (default: build)
#   OUT        output path      (default: BENCH_micro_ops.json)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_micro_ops.json}
FILTER=${1:-.}

BINS=()
for name in bench_micro_ops bench_fabric_throughput; do
  if [ -x "$BUILD_DIR/$name" ]; then
    BINS+=("$BUILD_DIR/$name")
  else
    echo "warning: $BUILD_DIR/$name not found — skipped (build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  fi
done
if [ ${#BINS[@]} -eq 0 ]; then
  echo "error: no benchmark binaries found in $BUILD_DIR" >&2
  exit 1
fi

RAWS=()
trap 'rm -f "${RAWS[@]}"' EXIT
for bin in "${BINS[@]}"; do
  RAW=$(mktemp)
  RAWS+=("$RAW")
  "$bin" --benchmark_filter="$FILTER" --benchmark_format=json \
         --benchmark_out="$RAW" --benchmark_out_format=json >&2
done

python3 - "$OUT" "${RAWS[@]}" <<'PY'
import json
import sys

out_path, raw_paths = sys.argv[1], sys.argv[2:]

context = {}
records = []
# google-benchmark's own per-run keys; anything else numeric is a user
# counter (msgs_per_s, bytes_per_round, ...) and passes through verbatim.
known = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "items_per_second", "bytes_per_second", "label", "family_index",
    "per_family_instance_index", "aggregate_name", "aggregate_unit",
}
for raw_path in raw_paths:
    with open(raw_path) as f:
        raw = json.load(f)
    context = context or raw.get("context", {})
    for b in raw.get("benchmarks", []):
        if b.get("error_occurred"):
            # Keep the healthy records; surface the failure on stderr.
            print(f"warning: {b.get('name', '?')} errored: "
                  f"{b.get('error_message', 'unknown')}", file=sys.stderr)
            continue
        name = b["name"]
        op, _, shape = name.partition("/")
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
        rec = {
            "op": op,
            "shape": shape or "-",
            "ms": round(b["real_time"] * scale, 6),
        }
        # For the compute kernels items_processed counts MACs:
        # GFLOP/s = 2 * MACs/s / 1e9. Fabric benches count messages instead
        # and report their rates via user counters below.
        ips = b.get("items_per_second")
        if ips is not None and not op.startswith("BM_Fabric") and \
                not op.startswith("BM_Wire"):
            rec["gflops"] = round(2.0 * ips / 1e9, 3)
        for key, val in b.items():
            if key not in known and isinstance(val, (int, float)):
                rec[key] = round(val, 3)
        records.append(rec)

with open(out_path, "w") as f:
    json.dump({"context": context, "benchmarks": records}, f, indent=2)
    f.write("\n")

print(f"wrote {out_path} ({len(records)} benchmarks)")
PY
