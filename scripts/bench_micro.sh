#!/usr/bin/env bash
# Runs the google-benchmark binaries (bench_micro_ops + bench_fabric_throughput)
# and distills the result into BENCH_micro_ops.json — one record per
# benchmark: {op, shape, ms, gflops?, counters...} — so successive PRs have
# a perf trajectory to compare against.
#
# Usage: scripts/bench_micro.sh [filter-regex]
#   BUILD_DIR  build directory (default: build)
#   OUT        output path      (default: BENCH_micro_ops.json)
#   NO_BUILD   set to skip the configure/build step (binaries must exist
#              and still must self-report a release build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_micro_ops.json}
FILTER=${1:-.}

# Recorded numbers must come from a release build of the repo. Configure
# and build here (Release is the CMakeLists default); the distiller below
# double-checks the binary's own fedtrans_build_type context key and
# refuses to write JSON from anything else — the `library_build_type` key
# google-benchmark prints reflects the system libbenchmark, not this repo,
# so it is deliberately ignored.
if [ -z "${NO_BUILD:-}" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)" >&2
fi

BINS=()
for name in bench_micro_ops bench_fabric_throughput; do
  if [ -x "$BUILD_DIR/$name" ]; then
    BINS+=("$BUILD_DIR/$name")
  else
    echo "warning: $BUILD_DIR/$name not found — skipped (build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  fi
done
if [ ${#BINS[@]} -eq 0 ]; then
  echo "error: no benchmark binaries found in $BUILD_DIR" >&2
  exit 1
fi

RAWS=()
trap 'rm -f "${RAWS[@]}"' EXIT
for bin in "${BINS[@]}"; do
  RAW=$(mktemp)
  RAWS+=("$RAW")
  # The system libbenchmark predates JSON output for AddCustomContext, so
  # the binaries expose the repo-build context keys via a probe flag; the
  # distiller merges them into the recorded context and gates on them.
  "$bin" --fedtrans_context >"$RAW"
  "$bin" --benchmark_filter="$FILTER" --benchmark_format=json \
         --benchmark_out="$RAW.bench" --benchmark_out_format=json >&2
  RAWS+=("$RAW.bench")
done

python3 - "$OUT" "${RAWS[@]}" <<'PY'
import json
import sys

out_path, raw_paths = sys.argv[1], sys.argv[2:]

context = {}
records = []
# google-benchmark's own per-run keys; anything else numeric is a user
# counter (msgs_per_s, bytes_per_round, ...) and passes through verbatim.
known = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "items_per_second", "bytes_per_second", "label", "family_index",
    "per_family_instance_index", "aggregate_name", "aggregate_unit",
}
for raw_path in raw_paths:
    with open(raw_path) as f:
        raw = json.load(f)
    if "benchmarks" not in raw:
        # --fedtrans_context probe output: a flat {fedtrans_*: ...} object.
        # Refuse to record from a non-release repo build; the binaries
        # stamp fedtrans_build_type from their own NDEBUG state (the
        # library_build_type key google-benchmark itself prints describes
        # the system libbenchmark and is meaningless for the repo's code).
        build_type = raw.get("fedtrans_build_type")
        if build_type != "release":
            sys.exit(
                f"error: refusing to record benchmarks from a "
                f"'{build_type}' build (fedtrans_build_type). "
                f"Rebuild with -DCMAKE_BUILD_TYPE=Release and re-run.")
        context.update(raw)
        continue
    ctx = dict(raw.get("context", {}))
    ctx.update(context)
    context = ctx
    for b in raw.get("benchmarks", []):
        if b.get("error_occurred"):
            # Keep the healthy records; surface the failure on stderr.
            print(f"warning: {b.get('name', '?')} errored: "
                  f"{b.get('error_message', 'unknown')}", file=sys.stderr)
            continue
        name = b["name"]
        op, _, shape = name.partition("/")
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
        rec = {
            "op": op,
            "shape": shape or "-",
            "ms": round(b["real_time"] * scale, 6),
        }
        # For the compute kernels items_processed counts MACs:
        # GFLOP/s = 2 * MACs/s / 1e9. Fabric benches count messages, the
        # robust-aggregation bench counts reduced coordinates — neither is
        # a MAC, so no gflops key for them; ms is their trajectory metric.
        ips = b.get("items_per_second")
        if ips is not None and not op.startswith("BM_Fabric") and \
                not op.startswith("BM_Wire") and \
                not op.startswith("BM_Robust"):
            rec["gflops"] = round(2.0 * ips / 1e9, 3)
        for key, val in b.items():
            if key not in known and isinstance(val, (int, float)):
                rec[key] = round(val, 3)
        records.append(rec)

with open(out_path, "w") as f:
    json.dump({"context": context, "benchmarks": records}, f, indent=2)
    f.write("\n")

print(f"wrote {out_path} ({len(records)} benchmarks)")
PY
