#!/usr/bin/env bash
# Runs bench_micro_ops and distills the result into BENCH_micro_ops.json —
# one record per benchmark: {op, shape, ms, gflops} — so successive PRs have
# a perf trajectory to compare against.
#
# Usage: scripts/bench_micro.sh [filter-regex]
#   BUILD_DIR  build directory (default: build)
#   OUT        output path      (default: BENCH_micro_ops.json)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_micro_ops.json}
FILTER=${1:-.}
BIN="$BUILD_DIR/bench_micro_ops"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
"$BIN" --benchmark_filter="$FILTER" --benchmark_format=json \
       --benchmark_out="$RAW" --benchmark_out_format=json >&2

python3 - "$RAW" "$OUT" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

records = []
for b in raw.get("benchmarks", []):
    name = b["name"]
    op, _, shape = name.partition("/")
    ns = b["real_time"]  # google-benchmark default time_unit is ns
    rec = {
        "op": op,
        "shape": shape or "-",
        "ms": round(ns / 1e6, 6),
    }
    # items_processed counts MACs: GFLOP/s = 2 * MACs/s / 1e9.
    ips = b.get("items_per_second")
    if ips is not None:
        rec["gflops"] = round(2.0 * ips / 1e9, 3)
    records.append(rec)

with open(out_path, "w") as f:
    json.dump({"context": raw.get("context", {}), "benchmarks": records}, f,
              indent=2)
    f.write("\n")

print(f"wrote {out_path} ({len(records)} benchmarks)")
PY
