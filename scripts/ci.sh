#!/usr/bin/env bash
# Tier-1 verify in one command: docs check + configure + build + ctest.
# Exits nonzero on the first failure, so CI and tooling can gate on it
# directly. The build runs with -Wall -Wextra promoted to errors
# (FEDTRANS_WERROR=ON), so a new warning fails CI; the docs check
# (scripts/check_docs.sh) fails on pages referencing renamed/removed files
# or symbols. The ctest suite includes the tree-parity, numeric
# partial-aggregation and retry-policy gates (test_fabric), the
# chaos-scenario sweep (test_chaos — fault x topology matrix, invariant
# checks under parallel ctest with pinned FEDTRANS_THREADS), and the
# engine/shim parity gates (test_engine_parity).
#
# Usage: scripts/ci.sh [extra ctest args...]
#   BUILD_DIR  build directory   (default: build)
#   JOBS       parallel jobs     (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}

scripts/check_docs.sh
cmake -B "$BUILD_DIR" -S . -DFEDTRANS_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
