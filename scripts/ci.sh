#!/usr/bin/env bash
# Tier-1 verify in one command: docs check + configure + build + ctest.
# Exits nonzero on the first failure, so CI and tooling can gate on it
# directly. The build runs with -Wall -Wextra promoted to errors
# (FEDTRANS_WERROR=ON), so a new warning fails CI; the docs check
# (scripts/check_docs.sh) fails on pages referencing renamed/removed files
# or symbols. The ctest suite includes the tree-parity, numeric
# partial-aggregation and retry-policy gates (test_fabric), the
# chaos-scenario sweep (test_chaos — fault x topology x Byzantine-attack
# matrix, invariant checks under parallel ctest with pinned
# FEDTRANS_THREADS), the robust-aggregation gates (test_robust), and the
# engine/shim parity gates (test_engine_parity).
#
# Beyond the main leg, two auxiliary builds gate kernel hygiene:
#   * an ASan+UBSan build (FEDTRANS_SANITIZE=ON) running the tensor/nn
#     suites — the packed-panel GEMM micro-kernels and the batched im2col
#     lowering are exactly the code where an off-by-one tail read would
#     otherwise go unnoticed;
#   * a SIMD-disabled build (FEDTRANS_SIMD=OFF, still -Werror) proving the
#     scalar parity reference compiles warnings-clean on its own.
# Set FEDTRANS_CI_FAST=1 to skip both auxiliary legs.
#
# Usage: scripts/ci.sh [extra ctest args...]
#   BUILD_DIR  build directory   (default: build)
#   JOBS       parallel jobs     (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}

scripts/check_docs.sh
cmake -B "$BUILD_DIR" -S . -DFEDTRANS_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"

# Multi-process leg: leaf aggregators as forked child processes over real
# Unix-domain sockets (examples/multiproc_federation.cpp). The example
# verifies the cross-process round bitwise against an in-process replay
# and exits nonzero on any divergence; the watchdog timeout turns a hung
# socket (a child that died mid-frame, a listener that never accepts) into
# a CI failure instead of a stuck job.
FEDTRANS_THREADS=4 timeout 300 "$BUILD_DIR"/example_multiproc_federation

# Tracing-enabled adversarial leg: the chaos-scenario sweep (now including
# the Byzantine attack matrix and the robust-aggregation suite), the
# robust-reducer unit/property gates and the parity gates must stay
# bitwise deterministic with live tracing (FEDTRANS_TRACE=1 autostarts
# wall-clock tracing in every test binary; test_obs also exercises the
# virtual clock explicitly). test_chaos/test_robust run with the
# CMake-pinned FEDTRANS_THREADS=4 so their 1-vs-4-thread determinism
# checks see a stable pool regardless of the CI host's core count.
FEDTRANS_TRACE=1 ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -j "$JOBS" -R 'test_(chaos|robust|fabric|engine_parity|obs)$'

if [ -z "${FEDTRANS_CI_FAST:-}" ]; then
  # ASan+UBSan over the kernel-heavy suites (tensor, dtype, GEMM backends,
  # conv lowerings, layers).
  SAN_DIR="$BUILD_DIR-asan"
  cmake -B "$SAN_DIR" -S . -DFEDTRANS_SANITIZE=ON
  cmake --build "$SAN_DIR" -j "$JOBS" --target \
    test_tensor test_gemm_simd test_mixed_precision test_backend \
    test_layers test_layers_extended
  ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS" \
    -R 'test_(tensor|gemm_simd|mixed_precision|backend|layers|layers_extended)$'

  # Scalar-only build: the always-on parity reference must stay
  # warnings-clean without any SIMD code paths compiled in.
  NOSIMD_DIR="$BUILD_DIR-nosimd"
  cmake -B "$NOSIMD_DIR" -S . -DFEDTRANS_SIMD=OFF -DFEDTRANS_WERROR=ON
  cmake --build "$NOSIMD_DIR" -j "$JOBS" --target \
    test_gemm_simd test_mixed_precision
  ctest --test-dir "$NOSIMD_DIR" --output-on-failure -j "$JOBS" \
    -R 'test_(gemm_simd|mixed_precision)$'
fi
