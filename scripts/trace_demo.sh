#!/usr/bin/env bash
# End-to-end telemetry demo: runs the sharded-federation example with
# virtual-clock tracing and a run report enabled. Artifacts land in
# OUT_DIR (default: trace_demo/):
#   trace.json   Chrome trace_event JSON of the simulated timeline —
#                round envelopes, frame transfers, client train windows,
#                retries and leaf failovers on semantic tracks. Load it at
#                https://ui.perfetto.dev or chrome://tracing.
#   report.json  RunReport of the example's last engine session: config,
#                per-round records, and the merged metrics snapshot.
#
# Usage: scripts/trace_demo.sh
#   BUILD_DIR  build directory (default: build)
#   OUT_DIR    artifact directory (default: trace_demo)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT_DIR=${OUT_DIR:-trace_demo}

if [ ! -x "$BUILD_DIR/example_sharded_federation" ]; then
  cmake -B "$BUILD_DIR" -S . >&2
  cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)" \
    --target example_sharded_federation >&2
fi

mkdir -p "$OUT_DIR"
FEDTRANS_TRACE=virtual \
FEDTRANS_TRACE_OUT="$OUT_DIR/trace.json" \
FEDTRANS_RUN_REPORT="$OUT_DIR/report.json" \
  "$BUILD_DIR/example_sharded_federation"

echo
echo "trace:  $OUT_DIR/trace.json  (load in https://ui.perfetto.dev)"
echo "report: $OUT_DIR/report.json"
