#!/usr/bin/env bash
# Docs cross-checker: fail if a page under docs/ (or README.md) references
# a repo path or code symbol that no longer exists, so the architecture
# docs cannot silently rot. Three kinds of references are checked:
#
#   1. repo paths          src/net/wire.hpp, scripts/bench_micro.sh,
#                          src/net/wire.* (glob), src/common/x.{hpp,cpp}
#   2. markdown links      [text](relative.md) — http(s) links are skipped
#   3. backticked symbols  `FederationServer`, `RoundRecord::lost_updates` —
#                          every ::-component must appear somewhere in
#                          src/ tests/ bench/ examples/ scripts/ CMakeLists.txt
#
# Usage: scripts/check_docs.sh   (run from anywhere; exits nonzero on rot)
set -euo pipefail

cd "$(dirname "$0")/.."

DOCS=(docs/*.md README.md)
SEARCH_DIRS=(src tests bench examples scripts CMakeLists.txt)
fail=0

complain() {
  echo "docs-check: $1: $2" >&2
  fail=1
}

path_exists() {
  local ref=$1
  if [[ $ref == *"{"* ]]; then
    # brace form: src/common/thread_pool.{hpp,cpp}
    local base=${ref%%\{*} exts=${ref#*\{}
    exts=${exts%\}*}
    local e
    IFS=',' read -ra parts <<<"$exts"
    for e in "${parts[@]}"; do
      [[ -e "${base}${e}" ]] || return 1
    done
    return 0
  fi
  if [[ $ref == *".*" ]]; then
    # glob form: src/net/wire.* — at least one match must exist
    compgen -G "$ref" >/dev/null
    return
  fi
  [[ -e $ref ]]
}

for doc in "${DOCS[@]}"; do
  [[ -f $doc ]] || continue

  # 1. repo paths: anything that looks like <topdir>/<more>.
  while IFS= read -r ref; do
    # Strip *trailing* punctuation markdown tends to glue on (commas stay
    # legal inside a brace form like src/x.{hpp,cpp}).
    ref=$(sed -E "s/[),:,.\`'\"]+$//" <<<"$ref")
    [[ -n $ref ]] || continue
    path_exists "$ref" || complain "$doc" "missing path '$ref'"
  done < <(grep -oE '\b(src|tests|scripts|examples|bench|docs)/[A-Za-z0-9_.{},/*-]+' "$doc" | sort -u)

  # 2. relative markdown links (path-shaped targets only — a lambda in a
  #    code snippet can also match the ](...) pattern).
  while IFS= read -r link; do
    [[ $link == http* ]] && continue
    [[ $link == "#"* ]] && continue
    [[ $link =~ ^[A-Za-z0-9_./#-]+$ ]] || continue
    target=$(dirname "$doc")/"${link%%#*}"
    [[ -e $target ]] || complain "$doc" "broken link '$link'"
  done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\((.*)\)$/\1/' | sort -u)

  # 3. backticked identifiers: every ::-component must appear in the tree.
  #    Only CamelCase / UPPER_CASE / qualified tokens are checked — they are
  #    the ones that rot when code is renamed; lower_snake words are too
  #    generic to grep for meaningfully.
  while IFS= read -r sym; do
    sym=${sym//\`/}
    sym=${sym%"()"}
    [[ $sym =~ ^[A-Za-z_][A-Za-z0-9_]*(::[A-Za-z0-9_]+)*$ ]] || continue
    [[ $sym =~ [A-Z] ]] || continue
    IFS='::' read -ra parts <<<"$sym"
    for part in "${parts[@]}"; do
      [[ -n $part ]] || continue
      grep -rqF "$part" "${SEARCH_DIRS[@]}" 2>/dev/null ||
        complain "$doc" "unknown symbol '$sym' (component '$part')"
    done
  done < <(grep -oE '`[A-Za-z_][A-Za-z0-9_:]*(\(\))?`' "$doc" | sort -u)
done

if [[ $fail -ne 0 ]]; then
  echo "docs-check: FAILED — fix the stale references above" >&2
  exit 1
fi
echo "docs-check: OK (${DOCS[*]})"
