// Tests for the binary serialization primitives (common/serial.hpp) that
// checkpointing and optimizer/selector state persistence build on.

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/serial.hpp"

namespace fedtrans {
namespace {

TEST(SerialTest, PodRoundTrip) {
  std::stringstream ss;
  write_pod<std::int32_t>(ss, -42);
  write_pod<double>(ss, 3.14159);
  write_pod<std::uint8_t>(ss, 255);
  EXPECT_EQ(read_pod<std::int32_t>(ss), -42);
  EXPECT_EQ(read_pod<double>(ss), 3.14159);
  EXPECT_EQ(read_pod<std::uint8_t>(ss), 255);
}

TEST(SerialTest, PodReadFromEmptyStreamThrows) {
  std::stringstream ss;
  EXPECT_THROW(read_pod<std::int64_t>(ss), Error);
}

TEST(SerialTest, VectorRoundTrip) {
  std::stringstream ss;
  const std::vector<double> v{1.5, -2.5, 0.0, 1e300};
  write_vec(ss, v);
  EXPECT_EQ(read_vec<double>(ss), v);
}

TEST(SerialTest, EmptyVectorRoundTrip) {
  std::stringstream ss;
  write_vec(ss, std::vector<int>{});
  EXPECT_TRUE(read_vec<int>(ss).empty());
}

TEST(SerialTest, LargeVectorRoundTrip) {
  std::stringstream ss;
  std::vector<float> v(100000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<float>(i) * 0.5f;
  write_vec(ss, v);
  EXPECT_EQ(read_vec<float>(ss), v);
}

TEST(SerialTest, TruncatedVectorThrows) {
  std::stringstream ss;
  write_vec(ss, std::vector<double>{1.0, 2.0, 3.0});
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() - 4));
  EXPECT_THROW(read_vec<double>(cut), Error);
}

TEST(SerialTest, HugeLengthPrefixFailsBeforeAllocating) {
  // A corrupted length prefix (here: 2^61 elements) must be rejected
  // against the bytes actually remaining in the stream, not handed to the
  // allocator.
  std::stringstream ss;
  write_pod<std::uint64_t>(ss, std::uint64_t{1} << 61);
  ss.write("abcdefgh", 8);
  EXPECT_THROW(read_vec<double>(ss), Error);

  std::stringstream st;
  write_pod<std::uint64_t>(st, std::uint64_t{1} << 61);
  st.write("abcdefgh", 8);
  EXPECT_THROW(read_string(st), Error);
}

TEST(SerialTest, StringRoundTrip) {
  std::stringstream ss;
  const std::string with_null("hello\nworld\0with null", 21);
  write_string(ss, "");
  write_string(ss, with_null);
  EXPECT_EQ(read_string(ss), "");
  EXPECT_EQ(read_string(ss), with_null);
}

TEST(SerialTest, MixedSequenceRoundTrip) {
  // The checkpoint format interleaves all three kinds; ordering must hold.
  std::stringstream ss;
  write_pod<std::uint64_t>(ss, 7);
  write_string(ss, "spec-blob");
  write_vec(ss, std::vector<int>{1, 2, 3});
  write_pod<std::uint8_t>(ss, 1);

  EXPECT_EQ(read_pod<std::uint64_t>(ss), 7u);
  EXPECT_EQ(read_string(ss), "spec-blob");
  EXPECT_EQ(read_vec<int>(ss), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(read_pod<std::uint8_t>(ss), 1);
}

}  // namespace
}  // namespace fedtrans
