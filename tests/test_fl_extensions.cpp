// Tests for the FL extension modules: client selection strategies, the
// extended server-optimizer family, the FedBuff asynchronous runner, and
// the FedRolex rolling-submodel baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "baselines/fedrolex.hpp"
#include "common/check.hpp"
#include "fl/async.hpp"
#include "fl/runner.hpp"
#include "fl/selection.hpp"
#include "model/align.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

DatasetConfig tiny_data(int clients = 12) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 22;
  cfg.min_train_samples = 10;
  cfg.eval_samples = 8;
  cfg.noise = 0.35;
  cfg.seed = 9;
  return cfg;
}

std::vector<DeviceProfile> fleet_with_capacity(int n, double macs,
                                               double sigma = 0.8) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.sigma_compute = sigma;
  cfg.seed = 4;
  cfg.with_median_capacity(macs);
  return sample_fleet(cfg);
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

// ---------------------------------------------------------------- selection

TEST(UniformSelectorTest, SelectsDistinctClientsWithinRange) {
  UniformSelector sel;
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    auto picks = sel.select(50, 10, rng);
    EXPECT_EQ(picks.size(), 10u);
    std::set<int> uniq(picks.begin(), picks.end());
    EXPECT_EQ(uniq.size(), picks.size());
    for (int c : picks) EXPECT_TRUE(c >= 0 && c < 50);
  }
}

TEST(UniformSelectorTest, ClampsWhenPopulationSmallerThanK) {
  UniformSelector sel;
  Rng rng(2);
  auto picks = sel.select(3, 10, rng);
  EXPECT_EQ(picks.size(), 3u);
}

TEST(UniformSelectorTest, CoversThePopulationOverManyRounds) {
  UniformSelector sel;
  Rng rng(3);
  std::set<int> seen;
  for (int r = 0; r < 200; ++r)
    for (int c : sel.select(30, 5, rng)) seen.insert(c);
  EXPECT_EQ(seen.size(), 30u);
}

TEST(UniformSelectorTest, RejectsEmptyPopulation) {
  UniformSelector sel;
  Rng rng(4);
  EXPECT_THROW(sel.select(0, 5, rng), Error);
}

TEST(OortSelectorTest, ExploresEveryoneEventually) {
  OortSelector sel;
  Rng rng(5);
  std::set<int> seen;
  for (int r = 0; r < 30; ++r)
    for (int c : sel.select(40, 8, rng)) {
      seen.insert(c);
      sel.report(c, 1.0, 10);
    }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(OortSelectorTest, ExploitsHighUtilityClients) {
  OortSelector sel(OortSelector::Options{/*epsilon=*/0.0,
                                         /*staleness_bonus=*/0.0});
  Rng rng(6);
  // First pass: everyone explored once, client 7 reports a huge loss.
  for (int c = 0; c < 10; ++c) sel.report(c, c == 7 ? 50.0 : 0.1, 16);
  // Mark all as explored by selecting the full population once.
  sel.select(10, 10, rng);
  for (int c = 0; c < 10; ++c) sel.report(c, c == 7 ? 50.0 : 0.1, 16);
  auto picks = sel.select(10, 3, rng);
  EXPECT_TRUE(std::find(picks.begin(), picks.end(), 7) != picks.end())
      << "highest-utility client should be exploited";
}

TEST(OortSelectorTest, UtilityIsLossTimesSqrtSamples) {
  OortSelector sel;
  sel.report(0, 2.0, 16);
  EXPECT_NEAR(sel.utility(0), 2.0 * 4.0, 1e-9);
}

TEST(OortSelectorTest, NonFiniteLossScoresZero) {
  OortSelector sel;
  sel.report(0, std::numeric_limits<double>::quiet_NaN(), 16);
  EXPECT_EQ(sel.utility(0), 0.0);
}

TEST(OortSelectorTest, SelectionsAreDistinct) {
  OortSelector sel;
  Rng rng(7);
  for (int r = 0; r < 10; ++r) {
    auto picks = sel.select(20, 6, rng);
    std::set<int> uniq(picks.begin(), picks.end());
    EXPECT_EQ(uniq.size(), picks.size());
    for (int c : picks) sel.report(c, rng.uniform(), 10);
  }
}

TEST(PowerOfChoiceTest, PrefersHighLossCandidates) {
  PowerOfChoiceSelector sel(/*candidate_factor=*/10);
  Rng rng(8);
  for (int c = 0; c < 10; ++c) sel.report(c, c == 3 ? 9.0 : 0.1, 10);
  // With factor 10 and k=1 the candidate pool is the whole population, so
  // the max-loss client must win.
  auto picks = sel.select(10, 1, rng);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], 3);
}

TEST(SelectorFactoryTest, MakesEveryKind) {
  EXPECT_EQ(make_selector(SelectorKind::Uniform)->name(), "uniform");
  EXPECT_EQ(make_selector(SelectorKind::Oort)->name(), "oort");
  EXPECT_EQ(make_selector(SelectorKind::PowerOfChoice)->name(), "pow-d");
}

// ------------------------------------------------------------- server opts

// All server optimizers should reduce a quadratic when fed its gradient as
// the "average delta": apply() must move weights against the delta.
class ServerOptConvergence
    : public ::testing::TestWithParam<ServerOptKind> {};

TEST_P(ServerOptConvergence, DrivesQuadraticTowardMinimum) {
  auto opt = make_server_opt(GetParam());
  WeightSet w{Tensor::from({3}, {4.0f, -3.0f, 2.0f})};
  const double initial = ws_l2_norm(w);
  for (int it = 0; it < 300; ++it) {
    // Gradient of 0.5‖w‖² is w itself; the server treats it as the delta.
    // Momentum kinds oscillate through the minimum (no monotonicity), but
    // every kind must end far closer than it started.
    WeightSet delta{w[0]};
    opt->apply(w, delta);
  }
  // FedAdagrad's steps decay like 1/sqrt(t) — at the default server lr it
  // makes bounded progress by design; the adaptive/momentum kinds converge.
  const double bound = GetParam() == ServerOptKind::FedAdagrad ? 0.85 : 0.2;
  EXPECT_LT(ws_l2_norm(w), bound * initial)
      << server_opt_name(GetParam()) << " failed to reduce the quadratic";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ServerOptConvergence,
    ::testing::Values(ServerOptKind::FedAvg, ServerOptKind::FedAvgM,
                      ServerOptKind::FedYogi, ServerOptKind::FedAdam,
                      ServerOptKind::FedAdagrad),
    [](const ::testing::TestParamInfo<ServerOptKind>& info) {
      return server_opt_name(info.param);
    });

TEST(ServerOptStateTest, SaveLoadRoundTripsAdaptiveState) {
  FedAdamServerOpt a, b;
  WeightSet w{Tensor::from({2}, {1.0f, -2.0f})};
  WeightSet w2 = w;
  for (int it = 0; it < 5; ++it) {
    WeightSet d{w[0]};
    a.apply(w, d);
  }
  std::stringstream ss;
  a.save_state(ss);
  b.load_state(ss);
  // After state transfer, both must produce identical next steps.
  WeightSet wa = w, wb = w;
  WeightSet d{w[0]};
  a.apply(wa, d);
  b.apply(wb, d);
  EXPECT_EQ(testing::max_abs_diff(wa[0], wb[0]), 0.0);
}

TEST(ServerOptStateTest, TruncatedStateThrows) {
  FedYogiServerOpt opt;
  std::stringstream ss;  // empty stream
  EXPECT_THROW(opt.load_state(ss), Error);
}

TEST(ServerOptStateTest, StatelessOptimizerStateIsEmpty) {
  FedAvgServerOpt opt;
  std::stringstream ss;
  opt.save_state(ss);
  EXPECT_TRUE(ss.str().empty());
}

TEST(ServerOptTest, FedAvgMMomentumAcceleratesRepeatedDeltas) {
  FedAvgMServerOpt with_m(1.0, 0.9);
  FedAvgServerOpt without_m(1.0);
  WeightSet wa{Tensor::from({1}, {10.0f})};
  WeightSet wb{Tensor::from({1}, {10.0f})};
  WeightSet d{Tensor::from({1}, {1.0f})};
  for (int it = 0; it < 5; ++it) {
    with_m.apply(wa, d);
    without_m.apply(wb, d);
  }
  // Momentum accumulates: the FedAvgM trajectory moves strictly farther.
  EXPECT_LT(wa[0][0], wb[0][0]);
}

// ------------------------------------------------------------------- async

TEST(FedBuffTest, CompletesRequestedAggregations) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  Rng rng(11);
  AsyncRunConfig cfg;
  cfg.concurrency = 4;
  cfg.buffer_size = 3;
  cfg.aggregations = 6;
  cfg.local.steps = 4;
  cfg.local.batch = 6;
  FedBuffRunner runner(Model(tiny_model(), rng), data, fleet, cfg);
  runner.run();
  EXPECT_EQ(runner.aggregations_done(), 6);
  EXPECT_EQ(runner.history().size(), 6u);
  EXPECT_GT(runner.now_s(), 0.0);
}

TEST(FedBuffTest, WallClockIsMonotone) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  Rng rng(12);
  AsyncRunConfig cfg;
  cfg.concurrency = 4;
  cfg.buffer_size = 2;
  cfg.aggregations = 8;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  FedBuffRunner runner(Model(tiny_model(), rng), data, fleet, cfg);
  runner.run();
  double prev = 0.0;
  for (const auto& rec : runner.history()) {
    EXPECT_GE(rec.round_time_s, prev);
    prev = rec.round_time_s;
  }
}

TEST(FedBuffTest, FreshRunnerMetersAreZeroNotNan) {
  // Zero-updates guard: every meter must be well-defined on a runner that
  // has not folded in a single update yet (no division by zero / NaN).
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  Rng rng(99);
  FedBuffRunner runner(Model(tiny_model(), rng), data, fleet,
                       AsyncRunConfig{});
  EXPECT_EQ(runner.mean_staleness(), 0.0);
  EXPECT_EQ(runner.aggregations_done(), 0);
  EXPECT_EQ(runner.now_s(), 0.0);
  EXPECT_TRUE(runner.history().empty());
  EXPECT_EQ(runner.costs().total_macs(), 0.0);
}

TEST(FedBuffTest, StalenessIsBoundedByConcurrencyWindow) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6, /*sigma=*/1.5);
  Rng rng(13);
  AsyncRunConfig cfg;
  cfg.concurrency = 6;
  cfg.buffer_size = 2;
  cfg.aggregations = 10;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  FedBuffRunner runner(Model(tiny_model(), rng), data, fleet, cfg);
  runner.run();
  // With C in flight and buffer K, an update can be at most
  // ceil(C/K) + aggregations behind only if it never returns; mean
  // staleness must at least be finite and non-negative.
  EXPECT_GE(runner.mean_staleness(), 0.0);
  EXPECT_LE(runner.mean_staleness(), cfg.aggregations);
}

TEST(FedBuffTest, LearnsOnSeparableData) {
  auto data = FederatedDataset::generate(tiny_data(10));
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  Rng rng(14);
  Model init(tiny_model(), rng);
  FedBuffRunner probe(init, data, fleet, AsyncRunConfig{});
  const double acc0 = probe.mean_client_accuracy();

  AsyncRunConfig cfg;
  cfg.concurrency = 5;
  cfg.buffer_size = 5;
  cfg.aggregations = 30;
  cfg.local.steps = 8;
  cfg.local.batch = 8;
  cfg.seed = 3;
  FedBuffRunner runner(init, data, fleet, cfg);
  runner.run();
  EXPECT_GT(runner.mean_client_accuracy(), acc0 + 0.15)
      << "async training should improve over the random initialization";
}

TEST(FedBuffTest, AsyncBeatsSyncWallClockUnderStragglers) {
  // The headline property (paper Appendix C context): with a highly
  // heterogeneous fleet, synchronous rounds pay the straggler tax; async
  // aggregations ship as fast updates arrive.
  auto data = FederatedDataset::generate(tiny_data(16));
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6, /*sigma=*/2.0);
  Rng rng(15);
  Model init(tiny_model(), rng);

  FlRunConfig scfg;
  scfg.rounds = 6;
  scfg.clients_per_round = 6;
  scfg.local.steps = 4;
  scfg.local.batch = 6;
  FedAvgRunner sync(init, data, fleet, scfg);
  sync.run();
  double sync_wall = 0.0;
  for (const auto& rec : sync.history()) sync_wall += rec.round_time_s;

  AsyncRunConfig acfg;
  acfg.concurrency = 6;
  acfg.buffer_size = 6;
  acfg.aggregations = 6;  // same number of server updates
  acfg.local.steps = 4;
  acfg.local.batch = 6;
  FedBuffRunner async_runner(init, data, fleet, acfg);
  async_runner.run();

  EXPECT_LT(async_runner.now_s(), sync_wall)
      << "async should finish the same number of aggregations sooner";
}

TEST(FedBuffTest, RejectsInvalidConfig) {
  auto data = FederatedDataset::generate(tiny_data(6));
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  Rng rng(16);
  AsyncRunConfig cfg;
  cfg.concurrency = 0;
  EXPECT_THROW(FedBuffRunner(Model(tiny_model(), rng), data, fleet, cfg),
               Error);
}

// ---------------------------------------------------------------- FedRolex

TEST(FedRolexTest, OffsetsRollByOneEachRound) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  BaselineConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 4;
  cfg.local.steps = 2;
  cfg.local.batch = 6;
  FedRolexRunner runner(tiny_model(), data, fleet, cfg);
  EXPECT_EQ(runner.offset_for_space(0), 0);
  runner.run_round();
  EXPECT_EQ(runner.offset_for_space(0), 1);
  runner.run_round();
  EXPECT_EQ(runner.offset_for_space(0), 2);
}

TEST(FedRolexTest, OffsetWrapsAtSpaceWidth) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  BaselineConfig cfg;
  cfg.rounds = 1;
  cfg.clients_per_round = 2;
  cfg.local.steps = 1;
  cfg.local.batch = 4;
  // tiny_model stem width is 4 → offset cycles with period 4.
  FedRolexRunner runner(tiny_model(), data, fleet, cfg);
  for (int r = 0; r < 9; ++r) runner.run_round();
  EXPECT_EQ(runner.offset_for_space(0), 9 % 4);
}

TEST(FedRolexTest, SubmodelWindowMatchesGlobalChannels) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  BaselineConfig cfg;
  FedRolexRunner runner(tiny_model(), data, fleet, cfg);

  // Level 1 = half width. At round 0 (offset 0) the submodel is the prefix
  // crop, i.e. identical to HeteroFL's extraction.
  Model sub = runner.submodel(1);
  auto gp = runner.global().params();
  auto sp = sub.params();
  ASSERT_EQ(gp.size(), sp.size());
  // Stem conv weight: sub rows must equal the first rows of the global.
  const Tensor& gw = *gp[0].value;
  const Tensor& sw = *sp[0].value;
  for (int r = 0; r < sw.dim(0); ++r)
    for (int c = 0; c < sw.dim(1); ++c)
      for (int y = 0; y < sw.dim(2); ++y)
        for (int x = 0; x < sw.dim(3); ++x)
          EXPECT_EQ(sw.at(r, c, y, x), gw.at(r, c, y, x));
}

TEST(FedRolexTest, FullWidthSubmodelIsBijective) {
  // The level-0 (ratio 1.0) submodel is a channel permutation of the global
  // model: same parameter count, same multiset of values per tensor.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  BaselineConfig cfg;
  cfg.clients_per_round = 3;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  FedRolexRunner runner(tiny_model(), data, fleet, cfg);
  runner.run_round();  // offset becomes 1 → genuinely rolled
  Model sub = runner.submodel(0);
  auto gp = runner.global().params();
  auto sp = sub.params();
  for (std::size_t i = 0; i < gp.size(); ++i) {
    ASSERT_TRUE(gp[i].value->same_shape(*sp[i].value));
    std::multiset<float> a, b;
    for (std::int64_t j = 0; j < gp[i].value->numel(); ++j) {
      a.insert((*gp[i].value)[j]);
      b.insert((*sp[i].value)[j]);
    }
    EXPECT_EQ(a, b) << "param " << i << " not a permutation";
  }
}

TEST(FedRolexTest, EveryGlobalChannelEventuallyTrains) {
  // HeteroFL's pathology: suffix channels only ever see full-width clients.
  // FedRolex's rolling window must touch ALL stem rows even when every
  // client runs the half-width submodel.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 1.0);  // tiny caps →
                                                              // weakest level
  BaselineConfig cfg;
  cfg.rounds = 8;
  cfg.clients_per_round = 4;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  FedRolexRunner runner(tiny_model(), data, fleet, cfg);
  auto before = runner.global().weights();
  runner.run();
  auto after = runner.global().weights();
  // Stem conv weight rows: every row must have changed in ≥1 element.
  const Tensor& b0 = before[0];
  const Tensor& a0 = after[0];
  const int rows = b0.dim(0);
  const std::int64_t per_row = b0.numel() / rows;
  for (int r = 0; r < rows; ++r) {
    double diff = 0.0;
    for (std::int64_t j = 0; j < per_row; ++j)
      diff += std::fabs(a0[r * per_row + j] - b0[r * per_row + j]);
    EXPECT_GT(diff, 0.0) << "row " << r << " never trained";
  }
}

TEST(FedRolexTest, LevelAssignmentRespectsCapacity) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6, /*sigma=*/1.5);
  BaselineConfig cfg;
  FedRolexRunner runner(tiny_model(), data, fleet, cfg);
  for (int c = 0; c < data.num_clients(); ++c) {
    const int lvl = runner.level_for(c);
    Model sub = runner.submodel(lvl);
    if (lvl < runner.num_levels() - 1) {
      EXPECT_LE(static_cast<double>(sub.macs()),
                fleet[static_cast<std::size_t>(c)].capacity_macs);
    }
  }
}

TEST(FedRolexTest, LearnsOnSeparableData) {
  auto data = FederatedDataset::generate(tiny_data(10));
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  BaselineConfig cfg;
  cfg.rounds = 25;
  cfg.clients_per_round = 5;
  cfg.local.steps = 8;
  cfg.local.batch = 8;
  cfg.seed = 5;
  FedRolexRunner runner(tiny_model(), data, fleet, cfg);
  auto rep_before = runner.report();
  runner.run();
  auto rep_after = runner.report();
  EXPECT_GT(rep_after.mean_accuracy, rep_before.mean_accuracy + 0.1);
}

TEST(FedRolexTest, RejectsAttentionModels) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  BaselineConfig cfg;
  cfg.clients_per_round = 2;
  cfg.local.steps = 1;
  cfg.local.batch = 4;
  auto vit = ModelSpec::attention(1, 8, 4, 2, 8, {16});
  FedRolexRunner runner(vit, data, fleet, cfg);
  EXPECT_THROW(runner.run_round(), Error);
}

TEST(FedRolexTest, RejectsRatiosNotStartingAtOne) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  EXPECT_THROW(FedRolexRunner(tiny_model(), data, fleet, BaselineConfig{},
                              {0.5, 0.25}),
               Error);
}

}  // namespace
}  // namespace fedtrans
