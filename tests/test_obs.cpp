// Observability tests: (1) wall spans nest correctly and per-thread
// buffers merge into one export; (2) the virtual-clock export is an exact,
// byte-stable golden independent of recording order/thread; (3) the
// metrics registry merges per-thread shards without losing increments and
// buckets values onto the shared log2 ladder correctly; (4) JSON and
// Prometheus expositions are byte-exact goldens; (5) a fabric run's
// registry snapshot reconciles exactly with CostMeter / FabricStats and
// the transport-level histograms tie out against the frame counters;
// (6) enabling tracing (virtual mode) does not perturb a chaos fabric run
// bitwise, across seeds and thread counts; (7) with tracing compiled in
// but disabled, span/metric sites allocate nothing and record nothing;
// (8) CostMeter caps its raw client-time samples while keeping exact
// whole-run statistics, and checkpoints round-trip the capped form.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "fl/metrics.hpp"
#include "fl/runner.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace {

// Allocation counter for the disabled-mode zero-cost check. Counting every
// global new in the binary is coarse but exact: a delta of zero across the
// measured loop proves the disabled span/metric sites never allocate.
std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// The replacement allocator intentionally pairs malloc/free across the
// new/delete overloads; the diagnostic cannot see the pairing.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace fedtrans {
namespace {

DatasetConfig tiny_data(int clients = 12) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 16;
  cfg.min_train_samples = 10;
  cfg.eval_samples = 8;
  cfg.noise = 0.35;
  cfg.seed = 17;
  return cfg;
}

std::vector<DeviceProfile> tiny_fleet(int n, std::uint64_t seed = 9) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.seed = seed;
  cfg.with_median_capacity(5e6);
  return sample_fleet(cfg);
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

FlRunConfig base_cfg(std::uint64_t seed) {
  FlRunConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 4;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.eval_every = 2;
  cfg.eval_clients = 6;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(FedAvgRunner& a, FedAvgRunner& b) {
  auto wa = a.model().weights();
  auto wb = b.model().weights();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0) << "tensor " << i;
  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t r = 0; r < a.history().size(); ++r) {
    EXPECT_EQ(a.history()[r].avg_loss, b.history()[r].avg_loss) << r;
    EXPECT_EQ(a.history()[r].round_time_s, b.history()[r].round_time_s) << r;
    EXPECT_EQ(a.history()[r].participants, b.history()[r].participants) << r;
    EXPECT_EQ(a.history()[r].lost_updates, b.history()[r].lost_updates) << r;
    EXPECT_EQ(a.history()[r].leaf_failovers, b.history()[r].leaf_failovers)
        << r;
  }
  EXPECT_EQ(a.costs().total_macs(), b.costs().total_macs());
  EXPECT_EQ(a.costs().network_bytes(), b.costs().network_bytes());
}

/// Extract (ts, dur) of the first exported event with this name.
bool find_event(const std::string& json, const std::string& name, double* ts,
                double* dur) {
  const std::string key = "\"name\":\"" + name + "\",\"ts\":";
  const auto pos = json.find(key);
  if (pos == std::string::npos) return false;
  const char* p = json.c_str() + pos + key.size();
  char* end = nullptr;
  *ts = std::strtod(p, &end);
  const char* d = std::strstr(end, "\"dur\":");
  if (d == nullptr) return false;
  *dur = std::strtod(d + 6, nullptr);
  return true;
}

// Span-recording tests only exist when the macros are compiled in; a
// -DFEDTRANS_TRACE_DISABLED=ON build turns every span site into a no-op
// (which TraceTest.DisabledModeRecordsNothingAndAllocatesNothing still
// covers).
#ifndef FEDTRANS_TRACE_DISABLED

TEST(TraceTest, WallSpansNestAndThreadBuffersMerge) {
  trace_clear();
  trace_start(TraceClock::Wall);
  {
    FT_SPAN("test", "outer");
    FT_SPAN("test", "inner");
    // inner closes before outer (reverse construction order), so the
    // exported spans must nest: inner inside [outer.ts, outer.ts + dur].
  }
  const int kThreads = 4, kPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) FT_SPAN("test", "worker");
    });
  for (auto& w : workers) w.join();
  trace_stop();

  EXPECT_EQ(trace_event_count(),
            static_cast<std::size_t>(2 + kThreads * kPerThread));
  EXPECT_EQ(trace_dropped_count(), 0u);

  std::ostringstream os;
  EXPECT_EQ(trace_export_json(os), trace_event_count());
  const std::string json = os.str();
  double ots = 0, odur = 0, its = 0, idur = 0;
  ASSERT_TRUE(find_event(json, "outer", &ots, &odur));
  ASSERT_TRUE(find_event(json, "inner", &its, &idur));
  EXPECT_LE(ots, its);
  EXPECT_LE(its + idur, ots + odur);
  trace_clear();
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(TraceTest, VirtualExportIsAByteStableGolden) {
  trace_clear();
  trace_start(TraceClock::Virtual);
  // Deliberately recorded out of timestamp order and across two threads:
  // the export must sort and serialize identically regardless.
  FT_VSPAN("net", "frame", 2.0, 1.0, kTrackRoot);
  FT_VSPAN_ARG("client", "train", 1.0, 2.5, kTrackClients + 3, "task", 7);
  std::thread([] { FT_VSPAN("engine", "round", 0.0, 4.0, kTrackEngine); })
      .join();
  trace_stop();

  std::ostringstream os;
  EXPECT_EQ(trace_export_json(os), 3u);
  EXPECT_EQ(
      os.str(),
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"engine\"}},"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"server/root\"}},"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":100003,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"client 3\"}},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"cat\":\"engine\","
      "\"name\":\"round\",\"ts\":0,\"dur\":4000000},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":100003,\"cat\":\"client\","
      "\"name\":\"train\",\"ts\":1000000,\"dur\":2500000,"
      "\"args\":{\"task\":7}},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"cat\":\"net\","
      "\"name\":\"frame\",\"ts\":2000000,\"dur\":1000000}"
      "]}\n");
  trace_clear();
}

#endif  // FEDTRANS_TRACE_DISABLED

TEST(TraceTest, EndpointTrackMapping) {
  EXPECT_EQ(track_of_endpoint(-1), kTrackRoot);
  EXPECT_EQ(track_of_endpoint(0), kTrackClients);
  EXPECT_EQ(track_of_endpoint(17), kTrackClients + 17);
  EXPECT_EQ(track_of_endpoint(-2), kTrackAggregators);
  EXPECT_EQ(track_of_endpoint(-5), kTrackAggregators + 3);
}

TEST(MetricsTest, ShardedCountersMergeExactly) {
  MetricsRegistry::global().reset();
  static Counter c("fedtrans_test_merge_total");
  const int kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& w : workers) w.join();
  auto snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("fedtrans_test_merge_total"),
            static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsTest, HistogramBucketsOnTheLog2Ladder) {
  MetricsRegistry::global().reset();
  static Histogram h("fedtrans_test_ladder_seconds");
  h.observe(0.75);  // -> le 1 (smallest power of two >= v)
  h.observe(1.0);   // exact power of two -> its own inclusive bucket, le 1
  h.observe(3.0);   // -> le 4
  h.observe(1e-9);  // below the ladder -> first bucket
  h.observe(2e12);  // above the ladder -> +Inf
  auto snap = MetricsRegistry::global().snapshot();
  const HistogramSnapshot& hs =
      snap.histograms.at("fedtrans_test_ladder_seconds");
  EXPECT_EQ(hs.count, 5u);
  EXPECT_DOUBLE_EQ(hs.sum, 0.75 + 1.0 + 3.0 + 1e-9 + 2e12);
  EXPECT_EQ(hs.min, 1e-9);
  EXPECT_EQ(hs.max, 2e12);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < hs.bucket_le.size(); ++b) {
    total += hs.bucket_count[b];
    if (hs.bucket_le[b] == 1.0) {
      EXPECT_EQ(hs.bucket_count[b], 2u);
    }
    if (hs.bucket_le[b] == 4.0) {
      EXPECT_EQ(hs.bucket_count[b], 1u);
    }
  }
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(hs.bucket_count.front(), 1u);  // 1e-9
  EXPECT_EQ(hs.bucket_count.back(), 1u);   // 2e12 -> +Inf
}

TEST(MetricsTest, JsonAndPrometheusExpositionGoldens) {
  // Hand-built snapshot: the serializer goldens must not depend on which
  // instruments other tests (or the library) happened to register.
  MetricsSnapshot snap;
  snap.counters["fedtrans_test_events_total"] = 3;
  snap.gauges["fedtrans_test_gauge"] = 7.5;
  HistogramSnapshot h;
  h.bucket_le = {0.5, 1.0, 2.0,
                 std::numeric_limits<double>::infinity()};
  h.bucket_count = {0, 1, 0, 2};
  h.count = 3;
  h.sum = 12.5;
  h.min = 0.75;
  h.max = 3.0;
  snap.histograms["fedtrans_test_seconds"] = h;

  EXPECT_EQ(snap.to_json(),
            "{\"counters\":{\"fedtrans_test_events_total\":3},"
            "\"gauges\":{\"fedtrans_test_gauge\":7.5},"
            "\"histograms\":{\"fedtrans_test_seconds\":"
            "{\"count\":3,\"sum\":12.5,\"min\":0.75,\"max\":3,"
            "\"buckets\":[[1,1],[\"+Inf\",2]]}}}");
  EXPECT_EQ(snap.to_prometheus(),
            "# TYPE fedtrans_test_events_total counter\n"
            "fedtrans_test_events_total 3\n"
            "# TYPE fedtrans_test_gauge gauge\n"
            "fedtrans_test_gauge 7.5\n"
            "# TYPE fedtrans_test_seconds histogram\n"
            "fedtrans_test_seconds_bucket{le=\"1\"} 1\n"
            "fedtrans_test_seconds_bucket{le=\"+Inf\"} 3\n"
            "fedtrans_test_seconds_sum 12.5\n"
            "fedtrans_test_seconds_count 3\n");
}

TEST(MetricsTest, FabricRunReconcilesWithCostMeterAndFabricStats) {
  MetricsRegistry::global().reset();
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(11);
  cfg.use_fabric = true;
  cfg.fabric_faults.drop_prob = 0.05;
  cfg.fabric_faults.dup_prob = 0.03;
  cfg.fabric_faults.seed = 77;
  FedAvgRunner b(init, data, fleet, cfg);
  b.run();
  ASSERT_NE(b.fabric(), nullptr);
  const FabricStats& st = b.fabric()->stats();

  auto& reg = MetricsRegistry::global();
  reg.export_cost_meter(b.costs());
  reg.export_fabric_stats(st);
  auto snap = reg.snapshot();

  // Legacy structs re-export verbatim: the registry view must reconcile
  // with every CostMeter / FabricStats field exactly.
  EXPECT_EQ(snap.counters.at("fedtrans_cost_training_macs_total"),
            b.costs().total_macs());
  EXPECT_EQ(snap.counters.at("fedtrans_cost_bytes_down_total"),
            b.costs().bytes_down());
  EXPECT_EQ(snap.counters.at("fedtrans_cost_bytes_up_total"),
            b.costs().bytes_up());
  EXPECT_EQ(snap.gauges.at("fedtrans_cost_storage_peak_bytes"),
            b.costs().storage_bytes());
  const auto fab = [&snap](const char* name) {
    return snap.counters.at(name);
  };
  EXPECT_EQ(fab("fedtrans_fabric_frames_sent_total"),
            static_cast<double>(st.frames_sent.load()));
  EXPECT_EQ(fab("fedtrans_fabric_frames_delivered_total"),
            static_cast<double>(st.frames_delivered.load()));
  EXPECT_EQ(fab("fedtrans_fabric_frames_dropped_total"),
            static_cast<double>(st.frames_dropped.load()));
  EXPECT_EQ(fab("fedtrans_fabric_frames_duplicated_total"),
            static_cast<double>(st.frames_duplicated.load()));
  EXPECT_EQ(fab("fedtrans_fabric_bytes_sent_total"),
            static_cast<double>(st.bytes_sent.load()));
  EXPECT_EQ(fab("fedtrans_fabric_bytes_delivered_total"),
            static_cast<double>(st.bytes_delivered.load()));
  EXPECT_EQ(fab("fedtrans_fabric_frames_retried_total"),
            static_cast<double>(st.frames_retried.load()));
  EXPECT_EQ(fab("fedtrans_fabric_bytes_root_in_total"),
            static_cast<double>(st.bytes_root_in.load()));

  // The transport's own histograms tie out against the frame counters:
  // every send observes its frame size (drops included); every accepted
  // send observes the receiving mailbox depth once.
  const auto& frames = snap.histograms.at("fedtrans_frame_bytes");
  EXPECT_EQ(frames.count, st.frames_sent.load());
  EXPECT_EQ(frames.sum, static_cast<double>(st.bytes_sent.load()));
  const auto& depth = snap.histograms.at("fedtrans_mailbox_depth");
  EXPECT_EQ(depth.count, st.frames_sent.load() - st.frames_dropped.load());

  // Per-client train-time histogram mirrors CostMeter's sample stream.
  const auto& tt = snap.histograms.at("fedtrans_client_train_time_seconds");
  EXPECT_EQ(tt.count, b.costs().client_time_count());

  EXPECT_EQ(snap.counters.at("fedtrans_engine_rounds_total"),
            static_cast<double>(cfg.rounds));
}

TEST(TraceTest, VirtualTracingDoesNotPerturbChaosRunsBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();

  for (std::uint64_t seed : {11ULL, 42ULL}) {
    Rng rng(3 + seed);
    Model init(tiny_model(), rng);
    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);
      FlRunConfig cfg = base_cfg(seed);
      cfg.use_fabric = true;
      cfg.topology.levels = 3;
      cfg.topology.shards = 4;
      cfg.fabric_faults.drop_prob = 0.05;
      cfg.fabric_faults.dup_prob = 0.03;
      cfg.fabric_faults.reorder_prob = 0.05;
      cfg.fabric_faults.leaf_death_prob = 0.1;
      cfg.fabric_faults.seed = 77;

      FedAvgRunner a(init, data, fleet, cfg);
      a.run();

      trace_clear();
      trace_start(TraceClock::Virtual);
      FedAvgRunner b(init, data, fleet, cfg);
      b.run();
      trace_stop();
#ifndef FEDTRANS_TRACE_DISABLED
      EXPECT_GT(trace_event_count(), 0u)
          << "virtual tracing recorded nothing on a fabric run";
#endif
      trace_clear();

      expect_identical(a, b);
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(TraceTest, DisabledModeRecordsNothingAndAllocatesNothing) {
  trace_stop();  // the CI tracing leg autostarts via FEDTRANS_TRACE=1
  trace_clear();
  ASSERT_FALSE(trace_enabled());
  // Prime the thread-local metric shard so the measured loop exercises the
  // steady-state path (first write registers the shard, which allocates).
  static Counter c("fedtrans_test_disabled_total");
  static Histogram h("fedtrans_test_disabled_seconds");
  c.inc();
  h.observe(1.0);

  const std::uint64_t before = g_allocs.load();
  for (int i = 0; i < 10000; ++i) {
    FT_SPAN("test", "disabled");
    FT_SPAN_ARG("test", "disabled_arg", "i", i);
    FT_VSPAN("test", "disabled_v", 1.0, 1.0, kTrackEngine);
    c.inc();
    h.observe(static_cast<double>(i));
  }
  const std::uint64_t after = g_allocs.load();
  EXPECT_EQ(after - before, 0u)
      << "disabled tracing / metric updates must not allocate";
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(CostMeterTest, ClientTimeSamplesCapWithExactRunningStats) {
  CostMeter m;
  const std::size_t n = CostMeter::kMaxClientTimeSamples + 904;  // 5000
  double sum = 0.0, sumsq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double s = 0.5 + 0.001 * static_cast<double>(i % 97);
    m.add_client_round_time(s);
    sum += s;
    sumsq += s * s;
  }
  EXPECT_EQ(m.client_times_s().size(), CostMeter::kMaxClientTimeSamples);
  EXPECT_EQ(m.client_time_count(), n);
  const double mean = sum / static_cast<double>(n);
  EXPECT_DOUBLE_EQ(m.client_time_mean(), mean);
  const double var = sumsq / static_cast<double>(n) - mean * mean;
  EXPECT_NEAR(m.client_time_std(), std::sqrt(var), 1e-12);

  // Checkpoint round-trip preserves both the capped raw samples and the
  // exact running statistics.
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  m.save(buf);
  CostMeter r;
  r.load(buf);
  EXPECT_EQ(r.client_times_s(), m.client_times_s());
  EXPECT_EQ(r.client_time_count(), m.client_time_count());
  EXPECT_EQ(r.client_time_mean(), m.client_time_mean());
  EXPECT_EQ(r.client_time_std(), m.client_time_std());
  EXPECT_EQ(r.total_macs(), m.total_macs());
}

TEST(CostMeterTest, StdMatchesStatsHelperBelowTheCap) {
  CostMeter m;
  for (double s : {1.0, 2.0, 4.0, 5.0}) m.add_client_round_time(s);
  EXPECT_DOUBLE_EQ(m.client_time_mean(), mean(m.client_times_s()));
  EXPECT_NEAR(m.client_time_std(), stddev(m.client_times_s()), 1e-12);
}

}  // namespace
}  // namespace fedtrans
