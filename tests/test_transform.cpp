#include <gtest/gtest.h>

#include "common/check.hpp"
#include "model/align.hpp"
#include "model/similarity.hpp"
#include "model/transform.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

Tensor random_input(const ModelSpec& spec, int n, Rng& rng) {
  Tensor x({n, spec.in_channels, spec.in_hw, spec.in_hw});
  x.randn(rng);
  return x;
}

// ---------------------------------------------------------------------
// Property: transformations are function-preserving (exact, not approx).
// Swept over cell kinds × target cell × operation × degree.
// ---------------------------------------------------------------------

struct PreserveCase {
  CellKind kind;
  int cell;
  bool widen;     // false = deepen
  double factor;  // widen factor
  int deepen;     // inserted blocks
};

std::string case_name(const ::testing::TestParamInfo<PreserveCase>& info) {
  const auto& c = info.param;
  std::string s = c.kind == CellKind::Conv
                      ? "Conv"
                      : (c.kind == CellKind::Mlp ? "Mlp" : "Attn");
  s += "_cell" + std::to_string(c.cell);
  s += c.widen ? "_widen" : "_deepen";
  s += c.widen ? std::to_string(static_cast<int>(c.factor * 10))
               : std::to_string(c.deepen);
  return s;
}

class FunctionPreservationTest : public ::testing::TestWithParam<PreserveCase> {
 protected:
  ModelSpec make_spec(CellKind kind) {
    switch (kind) {
      case CellKind::Conv:
        return ModelSpec::conv(2, 8, 5, 4, {6, 8}, {2, 2}, {1, 2});
      case CellKind::Mlp:
        return ModelSpec::mlp(16, 5, 8, {10, 12}, {2, 1});
      case CellKind::Attention:
        return ModelSpec::attention(1, 8, 5, 4, 6, {10, 12}, {1, 2});
    }
    return ModelSpec::conv(1, 8, 5, 4, {6});
  }
};

TEST_P(FunctionPreservationTest, ChildMatchesParentExactly) {
  const auto& c = GetParam();
  Rng rng(1234);
  Model parent(make_spec(c.kind), rng);
  Model child = c.widen
                    ? widen_cell(parent, c.cell, c.factor, 1, rng)
                    : deepen_cell(parent, c.cell, c.deepen, 1, rng);
  Tensor x = random_input(parent.spec(), 3, rng);
  Tensor yp = parent.forward(x, false);
  Tensor yc = child.forward(x, false);
  // fp32 round-off only; the construction is mathematically exact.
  EXPECT_LT(testing::max_abs_diff(yp, yc), 5e-4)
      << "parent " << parent.spec().summary() << " child "
      << child.spec().summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunctionPreservationTest,
    ::testing::Values(
        PreserveCase{CellKind::Conv, 0, true, 2.0, 1},
        PreserveCase{CellKind::Conv, 0, true, 1.5, 1},
        PreserveCase{CellKind::Conv, 0, true, 1.1, 1},
        PreserveCase{CellKind::Conv, 1, true, 2.0, 1},
        PreserveCase{CellKind::Conv, 1, true, 3.0, 1},
        PreserveCase{CellKind::Conv, 0, false, 2.0, 1},
        PreserveCase{CellKind::Conv, 1, false, 2.0, 2},
        PreserveCase{CellKind::Conv, 1, false, 2.0, 3},
        PreserveCase{CellKind::Mlp, 0, true, 2.0, 1},
        PreserveCase{CellKind::Mlp, 1, true, 1.4, 1},
        PreserveCase{CellKind::Mlp, 0, false, 2.0, 1},
        PreserveCase{CellKind::Mlp, 1, false, 2.0, 2},
        PreserveCase{CellKind::Attention, 0, true, 2.0, 1},
        PreserveCase{CellKind::Attention, 1, true, 1.5, 1},
        PreserveCase{CellKind::Attention, 0, false, 2.0, 1},
        PreserveCase{CellKind::Attention, 1, false, 2.0, 2}),
    case_name);

TEST(Transform, MultiCellPlanIsFunctionPreserving) {
  Rng rng(99);
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6, 8, 10}, {1, 2, 1}, {1, 2, 1});
  Model parent(spec, rng);
  std::vector<CellOp> plan(3);
  plan[0] = {CellOp::Kind::Widen, 2.0, 1};
  plan[1] = {CellOp::Kind::Deepen, 2.0, 1};
  plan[2] = {CellOp::Kind::Widen, 1.5, 1};
  Model child = transform_model(parent, plan, 1, "M1", rng);
  EXPECT_EQ(child.num_cells(), 4);
  Tensor x = random_input(spec, 2, rng);
  EXPECT_LT(testing::max_abs_diff(parent.forward(x, false),
                                  child.forward(x, false)),
            5e-4);
}

TEST(Transform, AdjacentWidensCompose) {
  Rng rng(100);
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6, 8}, {2, 2});
  Model parent(spec, rng);
  std::vector<CellOp> plan(2);
  plan[0] = {CellOp::Kind::Widen, 2.0, 1};
  plan[1] = {CellOp::Kind::Widen, 2.0, 1};
  Model child = transform_model(parent, plan, 1, "M1", rng);
  Tensor x = random_input(spec, 2, rng);
  EXPECT_LT(testing::max_abs_diff(parent.forward(x, false),
                                  child.forward(x, false)),
            5e-4);
}

TEST(Transform, WidenGrowsMacsAndParams) {
  Rng rng(101);
  Model parent(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);
  Model child = widen_cell(parent, 0, 2.0, 1, rng);
  EXPECT_GT(child.macs(), parent.macs());
  EXPECT_GT(child.num_params(), parent.num_params());
  EXPECT_EQ(child.spec().cells[0].width, 12);
  EXPECT_TRUE(child.spec().cells[0].widened_last);
}

TEST(Transform, DeepenInsertsFreshCellWithNewId) {
  Rng rng(102);
  Model parent(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);
  Model child = deepen_cell(parent, 0, 2, 1, rng);
  ASSERT_EQ(child.num_cells(), 3);
  EXPECT_EQ(child.spec().cells[1].blocks, 2);
  EXPECT_TRUE(child.spec().cells[1].residual);
  // Fresh id, distinct from both parents' cells.
  EXPECT_NE(child.spec().cells[1].id, parent.spec().cells[0].id);
  EXPECT_NE(child.spec().cells[1].id, parent.spec().cells[1].id);
  EXPECT_FALSE(child.spec().cells[0].widened_last);
}

TEST(Transform, LineageFieldsSet) {
  Rng rng(103);
  Model parent(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  Model child = widen_cell(parent, 0, 2.0, 7, rng);
  EXPECT_EQ(child.spec().model_id, 7);
  EXPECT_EQ(child.spec().parent_id, parent.spec().model_id);
}

TEST(Transform, NoWarmStartDiffersFromParent) {
  Rng rng(104);
  Model parent(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  std::vector<CellOp> plan(1);
  plan[0] = {CellOp::Kind::Widen, 2.0, 1};
  Model cold = transform_model(parent, plan, 1, "M1", rng,
                               /*warm_start=*/false);
  Tensor x = random_input(parent.spec(), 2, rng);
  EXPECT_GT(testing::max_abs_diff(parent.forward(x, false),
                                  cold.forward(x, false)),
            1e-3);
}

TEST(Transform, PlanSizeMismatchThrows) {
  Rng rng(105);
  Model parent(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);
  std::vector<CellOp> bad(1);
  EXPECT_THROW(transform_model(parent, bad, 1, "M1", rng), Error);
}

TEST(Transform, WidenFactorMustExceedOne) {
  Rng rng(106);
  Model parent(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  EXPECT_THROW(widen_cell(parent, 0, 1.0, 1, rng), Error);
}

TEST(Transform, SimilarityMatchesPaperRules) {
  Rng rng(107);
  Model parent(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);

  // Widen: matched cells contribute the param ratio; similarity < 1.
  Model widened = widen_cell(parent, 0, 2.0, 1, rng);
  const double s_widen =
      model_similarity(parent.spec(), widened.spec());
  EXPECT_GT(s_widen, 0.3);
  EXPECT_LT(s_widen, 1.0);

  // Deepen: inserted cell contributes 0 => sim = #matched / max(#cells).
  Model deepened = deepen_cell(parent, 0, 1, 2, rng);
  const double s_deep =
      model_similarity(parent.spec(), deepened.spec());
  EXPECT_NEAR(s_deep, 2.0 / 3.0, 1e-9);

  // Grandchild is less similar to the grandparent than the child is.
  Model grand = widen_cell(deepened, 1, 2.0, 3, rng);
  EXPECT_LT(model_similarity(parent.spec(), grand.spec()), s_deep);
}

TEST(Transform, WidenedChildStillTrains) {
  // The child must remain trainable (gradients flow through the widened
  // cell), not just function-preserving.
  Rng rng(108);
  Model parent(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  Model child = widen_cell(parent, 0, 2.0, 1, rng);
  Tensor x = random_input(child.spec(), 2, rng);
  Tensor y = child.forward(x, true);
  Tensor g(y.shape());
  g.fill(0.1f);
  child.backward(g);
  double norm = 0.0;
  for (auto& p : child.params()) norm += p.grad->l2_norm();
  EXPECT_GT(norm, 0.0);
}

TEST(Align, CopyOverlapMakesCropAgree) {
  Rng rng(109);
  Model parent(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);
  Model child = widen_cell(parent, 1, 2.0, 1, rng);
  // Zero the child and copy the parent in: the overlap must equal parent.
  auto ws = child.weights();
  for (auto& t : ws) t.zero();
  child.set_weights(ws);
  copy_overlap(child, parent);
  // Identity-prefix widen => the first 8 channels of cell 1 match exactly.
  auto pairs = align_params(child, parent);
  ASSERT_FALSE(pairs.empty());
  for (auto& p : pairs) {
    for_each_overlap(*p.dst, *p.src, [&](std::int64_t di, std::int64_t si) {
      EXPECT_EQ((*p.dst)[di], (*p.src)[si]);
    });
  }
}

TEST(Align, OverlapVisitsMinPrefixRectangle) {
  Tensor a({3, 4});
  Tensor b({2, 5});
  int count = 0;
  for_each_overlap(a, b, [&](std::int64_t, std::int64_t) { ++count; });
  EXPECT_EQ(count, 2 * 4);
}

TEST(Align, ScaleWidthsKeepsIdsAndScales) {
  auto full = ModelSpec::conv(3, 12, 10, 8, {16, 32});
  auto half = scale_widths(full, 0.5);
  EXPECT_EQ(half.stem_width, 4);
  EXPECT_EQ(half.cells[0].width, 8);
  EXPECT_EQ(half.cells[1].width, 16);
  EXPECT_EQ(half.cells[0].id, full.cells[0].id);
}

TEST(Align, ScaleWidthsNeverBelowOne) {
  auto full = ModelSpec::conv(1, 8, 4, 2, {2});
  auto tiny = scale_widths(full, 0.01);
  EXPECT_EQ(tiny.stem_width, 1);
  EXPECT_EQ(tiny.cells[0].width, 1);
}

}  // namespace
}  // namespace fedtrans
