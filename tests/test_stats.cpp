#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace fedtrans {
namespace {

TEST(Stats, MeanAndStddev) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
}

TEST(Stats, EmptyInputsReturnZero) {
  std::vector<double> xs;
  EXPECT_EQ(mean(xs), 0.0);
  EXPECT_EQ(stddev(xs), 0.0);
  EXPECT_EQ(percentile(xs, 50), 0.0);
  EXPECT_EQ(iqr(xs), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
}

TEST(Stats, PercentileUnsortedInput) {
  std::vector<double> xs{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Stats, IqrOfUniformGrid) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i);
  EXPECT_NEAR(iqr(xs), 50.0, 1e-9);
}

TEST(Stats, BoxStatsOrdering) {
  std::vector<double> xs{3, 1, 4, 1, 5, 9, 2, 6};
  const auto b = box_stats(xs);
  EXPECT_LE(b.min, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.max);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 9.0);
}

TEST(Stats, StandardizeZeroMeanUnitVar) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  const auto z = standardize(xs);
  EXPECT_NEAR(mean(z), 0.0, 1e-12);
  EXPECT_NEAR(stddev(z), 1.0, 1e-12);
}

TEST(Stats, StandardizeDegenerateAllEqual) {
  std::vector<double> xs{2, 2, 2};
  const auto z = standardize(xs);
  for (double v : z) EXPECT_EQ(v, 0.0);
}

TEST(Table, AlignedPrintContainsCellsAndSeparator) {
  TablePrinter t({"Method", "Accu"});
  t.add_row({"FedTrans", "78.3"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("FedTrans"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, CsvRows) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowArityMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_bytes(10.5 * 1024 * 1024), "10.5 MB");
  EXPECT_EQ(fmt_macs(2.5e6), "2.50 MMACs");
  EXPECT_NE(fmt_sci(1.23e14).find("e+14"), std::string::npos);
}

}  // namespace
}  // namespace fedtrans
