// Integration tests for FedTransTrainer with the extension knobs: pluggable
// participant selection and alternative server optimizers, plus checkpoint
// interaction with a stateful selector.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/trainer.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

DatasetConfig tiny_data(int clients = 12) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 20;
  cfg.min_train_samples = 10;
  cfg.eval_samples = 8;
  cfg.noise = 0.35;
  cfg.seed = 51;
  return cfg;
}

std::vector<DeviceProfile> fleet_with_capacity(int n, double macs) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.sigma_compute = 0.8;
  cfg.seed = 4;
  cfg.with_median_capacity(macs);
  return sample_fleet(cfg);
}

FedTransConfig fast_cfg() {
  FedTransConfig cfg;
  cfg.rounds = 10;
  cfg.clients_per_round = 4;
  cfg.local.steps = 4;
  cfg.local.batch = 6;
  cfg.gamma = 2;
  cfg.doc_delta = 2;
  cfg.beta = 10.0;
  cfg.act_window = 2;
  cfg.max_models = 3;
  cfg.seed = 61;
  return cfg;
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

TEST(TrainerSelectorTest, OortSelectorTrainsAndTransforms) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  auto cfg = fast_cfg();
  cfg.selector = SelectorKind::Oort;
  FedTransTrainer trainer(tiny_model(), data, fleet, cfg);
  trainer.run();
  EXPECT_GE(trainer.num_models(), 2);
  auto ev = trainer.evaluate_final();
  EXPECT_GT(ev.mean_accuracy, 0.0);
}

TEST(TrainerSelectorTest, SelectorChangesParticipantTrajectory) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  auto uniform_cfg = fast_cfg();
  auto oort_cfg = fast_cfg();
  oort_cfg.selector = SelectorKind::Oort;
  FedTransTrainer a(tiny_model(), data, fleet, uniform_cfg);
  FedTransTrainer b(tiny_model(), data, fleet, oort_cfg);
  a.run();
  b.run();
  // Different selection → different training trajectories (loss history).
  bool differs = false;
  for (std::size_t i = 0; i < a.history().size() && !differs; ++i)
    differs = a.history()[i].avg_loss != b.history()[i].avg_loss;
  EXPECT_TRUE(differs);
}

TEST(TrainerSelectorTest, CheckpointRoundTripsOortState) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  auto cfg = fast_cfg();
  cfg.selector = SelectorKind::Oort;

  FedTransTrainer ref(tiny_model(), data, fleet, cfg);
  for (int r = 0; r < 5; ++r) ref.run_round();
  std::stringstream ss;
  ref.save_checkpoint(ss);
  for (int r = 0; r < 5; ++r) ref.run_round();

  FedTransTrainer resumed(tiny_model(), data, fleet, cfg);
  resumed.load_checkpoint(ss);
  for (int r = 0; r < 5; ++r) resumed.run_round();

  // Oort's exploration state must be part of the checkpoint, or the resumed
  // trajectory diverges. Compare loss histories exactly.
  ASSERT_EQ(ref.history().size(), resumed.history().size());
  for (std::size_t i = 0; i < ref.history().size(); ++i)
    EXPECT_EQ(ref.history()[i].avg_loss, resumed.history()[i].avg_loss)
        << "round " << i;
}

TEST(TrainerServerOptTest, FedAdamComposesWithFedTrans) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  auto cfg = fast_cfg();
  cfg.server_opt = ServerOptKind::FedAdam;
  FedTransTrainer trainer(tiny_model(), data, fleet, cfg);
  trainer.run();
  EXPECT_GE(trainer.num_models(), 2);
  // Loss must broadly decrease from the first to the last third of rounds.
  const auto& h = trainer.history();
  double early = 0.0, late = 0.0;
  const std::size_t third = h.size() / 3;
  for (std::size_t i = 0; i < third; ++i) early += h[i].avg_loss;
  for (std::size_t i = h.size() - third; i < h.size(); ++i)
    late += h[i].avg_loss;
  EXPECT_LT(late, early);
}

TEST(TrainerServerOptTest, EveryServerOptKindRunsToCompletion) {
  auto data = FederatedDataset::generate(tiny_data(8));
  auto fleet = fleet_with_capacity(8, 5e6);
  for (ServerOptKind kind :
       {ServerOptKind::FedAvg, ServerOptKind::FedAvgM, ServerOptKind::FedYogi,
        ServerOptKind::FedAdam, ServerOptKind::FedAdagrad}) {
    auto cfg = fast_cfg();
    cfg.rounds = 4;
    cfg.server_opt = kind;
    FedTransTrainer trainer(tiny_model(), data, fleet, cfg);
    trainer.run();
    EXPECT_EQ(trainer.rounds_done(), 4) << server_opt_name(kind);
  }
}

}  // namespace
}  // namespace fedtrans
