// Population-layer tests: descriptors stay within the per-idle-client byte
// budget; every per-client derivation (profile, shard seed, availability
// phase) is a pure function of (population seed, client index) so two
// Populations with the same config agree exactly; availability draws are
// deterministic and respect the diurnal envelope; a federation driven off
// the lazy PopulationDataView (cohort pool, on-demand materialization) is
// bitwise identical to the same federation over the eager materialize_all()
// dataset, across seeds and thread counts; the cohort pool recycles and
// evicts as designed; and the fedtrans_pop_* metrics tie out against the
// pool's own counters.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/thread_pool.hpp"
#include "fl/engine.hpp"
#include "fl/runner.hpp"
#include "obs/metrics.hpp"
#include "pop/population.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

PopulationConfig tiny_pop(int clients = 12, std::uint64_t seed = 21) {
  PopulationConfig cfg;
  cfg.num_clients = clients;
  cfg.seed = seed;
  cfg.shard.num_classes = 4;
  cfg.shard.channels = 1;
  cfg.shard.hw = 8;
  cfg.shard.mean_train_samples = 16;
  cfg.shard.min_train_samples = 10;
  cfg.shard.eval_samples = 8;
  cfg.shard.noise = 0.35;
  cfg.fleet.with_median_capacity(5e6);
  cfg.pool_capacity = clients;  // small tests never evict unless asked
  return cfg;
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

bool same_client(const ClientData& a, const ClientData& b) {
  if (a.y_train != b.y_train || a.y_eval != b.y_eval) return false;
  return testing::max_abs_diff(a.x_train, b.x_train) == 0.0 &&
         testing::max_abs_diff(a.x_eval, b.x_eval) == 0.0;
}

TEST(PopulationTest, IdleClientFootprintStaysUnderBudget) {
  // The acceptance budget: descriptor + the engine's dense fleet copy must
  // stay ≤ 64 bytes per idle client.
  EXPECT_LE(sizeof(ClientDescriptor) + sizeof(DeviceProfile), 64u);

  Population pop(tiny_pop(1000));
  const std::size_t resident =
      pop.descriptor_bytes() +
      static_cast<std::size_t>(pop.num_clients()) * sizeof(DeviceProfile);
  EXPECT_LE(resident / static_cast<std::size_t>(pop.num_clients()), 64u);
}

TEST(PopulationTest, DescriptorsArePureFunctionsOfSeedAndIndex) {
  Population a(tiny_pop(64, 33));
  Population b(tiny_pop(64, 33));
  Population other(tiny_pop(64, 34));
  int differs = 0;
  for (int c = 0; c < a.num_clients(); ++c) {
    EXPECT_EQ(a.profile(c).compute_macs_per_s, b.profile(c).compute_macs_per_s);
    EXPECT_EQ(a.profile(c).bandwidth_bytes_per_s,
              b.profile(c).bandwidth_bytes_per_s);
    EXPECT_EQ(a.shard_seed(c), b.shard_seed(c));
    EXPECT_EQ(a.descriptor(c).avail_phase, b.descriptor(c).avail_phase);
    if (a.shard_seed(c) != other.shard_seed(c)) ++differs;
  }
  EXPECT_GT(differs, 56) << "a different population seed must reshuffle shards";
  EXPECT_TRUE(same_client(a.materialize(7), b.materialize(7)));
  EXPECT_FALSE(same_client(a.materialize(7), a.materialize(8)));
}

TEST(PopulationTest, DescriptorConstructionIsThreadCountInvariant) {
  const int prev = ThreadPool::global().size();
  ThreadPool::set_global_threads(1);
  Population serial(tiny_pop(500, 5));
  ThreadPool::set_global_threads(4);
  Population parallel(tiny_pop(500, 5));
  ThreadPool::set_global_threads(prev);
  for (int c = 0; c < serial.num_clients(); ++c) {
    EXPECT_EQ(serial.shard_seed(c), parallel.shard_seed(c));
    EXPECT_EQ(serial.profile(c).capacity_macs, parallel.profile(c).capacity_macs);
  }
}

TEST(PopulationTest, AvailabilityIsDeterministicAndBounded) {
  PopulationConfig cfg = tiny_pop(200, 8);
  cfg.availability.base_online_frac = 0.6;
  cfg.availability.diurnal_amplitude = 0.3;
  cfg.availability.period_rounds = 8;
  Population pop(cfg);
  Population again(cfg);

  double min_frac = 1.0, max_frac = 0.0;
  for (std::uint32_t round = 0; round < 16; ++round) {
    int online = 0;
    for (int c = 0; c < pop.num_clients(); ++c) {
      EXPECT_EQ(pop.available(round, c), again.available(round, c));
      online += pop.available(round, c) ? 1 : 0;
    }
    const double frac = static_cast<double>(online) / pop.num_clients();
    min_frac = std::min(min_frac, frac);
    max_frac = std::max(max_frac, frac);
  }
  // The diurnal cycle must actually swing participation around the base
  // rate (0.6 ± 0.3, sampled at 200 clients — generous tolerances).
  EXPECT_LT(min_frac, 0.55);
  EXPECT_GT(max_frac, 0.65);

  // Always-online default short-circuits to true.
  Population flat(tiny_pop(20, 8));
  for (int c = 0; c < flat.num_clients(); ++c)
    EXPECT_TRUE(flat.available(3, c));
}

TEST(PopulationTest, CohortSelectionScansDescriptorsOnly) {
  PopulationConfig cfg = tiny_pop(100, 12);
  cfg.availability.base_online_frac = 0.5;
  cfg.availability.diurnal_amplitude = 0.2;
  Population pop(cfg);
  Rng rng(4);
  const auto cohort = pop.select_cohort(/*round=*/2, /*k=*/10, rng);
  ASSERT_EQ(cohort.size(), 10u);
  std::set<int> uniq(cohort.begin(), cohort.end());
  EXPECT_EQ(uniq.size(), cohort.size()) << "cohort members must be distinct";
  for (int c : cohort) EXPECT_TRUE(pop.available(2, c));

  // When fewer clients are online than requested, everyone online serves.
  PopulationConfig sparse = tiny_pop(10, 12);
  sparse.availability.base_online_frac = 0.3;
  sparse.availability.diurnal_amplitude = 0.0;
  Population small(sparse);
  Rng rng2(4);
  const auto all = small.select_cohort(0, 10, rng2);
  for (int c : all) EXPECT_TRUE(small.available(0, c));
}

TEST(PopulationTest, HundredThousandClientsStayCheapUntilMaterialized) {
  Population pop(tiny_pop(100000, 77));
  EXPECT_EQ(pop.num_clients(), 100000);
  const std::size_t per_client =
      (pop.descriptor_bytes() +
       static_cast<std::size_t>(pop.num_clients()) * sizeof(DeviceProfile)) /
      static_cast<std::size_t>(pop.num_clients());
  EXPECT_LE(per_client, 64u);

  Rng rng(1);
  const auto cohort = pop.select_cohort(0, 128, rng);
  ASSERT_EQ(cohort.size(), 128u);
  // Materialize just the cohort's first members — the other ~100k clients
  // never exist beyond their descriptors.
  const ClientData c0 = pop.materialize(cohort[0]);
  EXPECT_GT(c0.y_train.size(), 0u);
  EXPECT_TRUE(same_client(c0, pop.materialize(cohort[0])));
}

TEST(CohortPoolTest, RecyclesHitsAndEvictsOldEpochs) {
  Population pop(tiny_pop(12, 9));
  CohortPool pool(pop, /*capacity=*/4);

  pool.begin_round({0, 1, 2, 3});
  for (int c : {0, 1, 2, 3}) EXPECT_TRUE(same_client(pool.get(c), pop.materialize(c)));
  EXPECT_EQ(pool.materializations(), 4u);
  EXPECT_EQ(pool.resident(), 4);
  EXPECT_GT(pool.resident_bytes(), 0u);

  // Same epoch, same clients: pure pool hits.
  pool.get(1);
  pool.get(2);
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.materializations(), 4u);

  // Next round overlaps on {2, 3}: the carried-over members stay warm, the
  // two newcomers evict the two stale slots.
  pool.begin_round({2, 3, 4, 5});
  for (int c : {2, 3, 4, 5}) pool.get(c);
  EXPECT_EQ(pool.hits(), 4u);
  EXPECT_EQ(pool.materializations(), 6u);
  EXPECT_EQ(pool.evictions(), 2u);
  EXPECT_EQ(pool.resident(), 4);
}

TEST(CohortPoolTest, PopMetricsTieOutAgainstPoolCounters) {
  auto before = MetricsRegistry::global().snapshot();
  const double mat0 = before.counters["fedtrans_pop_materializations_total"];
  const double hit0 = before.counters["fedtrans_pop_pool_hits_total"];
  const double evi0 = before.counters["fedtrans_pop_pool_evictions_total"];

  Population pop(tiny_pop(10, 3));
  CohortPool pool(pop, 3);
  pool.begin_round({0, 1, 2});
  for (int c : {0, 1, 2, 1, 0}) pool.get(c);
  pool.begin_round({3, 4});
  for (int c : {3, 4, 3}) pool.get(c);

  auto after = MetricsRegistry::global().snapshot();
  EXPECT_EQ(after.counters["fedtrans_pop_materializations_total"] - mat0,
            static_cast<double>(pool.materializations()));
  EXPECT_EQ(after.counters["fedtrans_pop_pool_hits_total"] - hit0,
            static_cast<double>(pool.hits()));
  EXPECT_EQ(after.counters["fedtrans_pop_pool_evictions_total"] - evi0,
            static_cast<double>(pool.evictions()));
}

TEST(PopulationParityTest, LazyCohortFederationMatchesEagerBitwise) {
  const int prev_threads = ThreadPool::global().size();
  for (std::uint64_t seed : {11ULL, 42ULL}) {
    PopulationConfig pcfg = tiny_pop(24, seed);
    pcfg.availability.base_online_frac = 0.8;
    pcfg.availability.diurnal_amplitude = 0.15;
    pcfg.availability.period_rounds = 6;
    Population pop(pcfg);
    const FederatedDataset eager = pop.materialize_all();
    ASSERT_EQ(eager.num_clients(), pop.num_clients());
    for (int c = 0; c < pop.num_clients(); ++c)
      ASSERT_TRUE(same_client(eager.client(c), pop.materialize(c)))
          << "eager twin diverged at client " << c;

    Rng mrng(3 + seed);
    Model init(tiny_model(), mrng);
    SessionConfig session;
    session.rounds = 3;
    session.clients_per_round = 5;
    session.local.steps = 3;
    session.local.batch = 6;
    session.eval_every = 2;
    session.eval_clients = 6;
    session.seed = seed;

    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);

      FederationEngine a(std::make_unique<FedAvgStrategy>(init, FedAvgOptions{}),
                         eager, pop.fleet(), session);
      a.set_selector(std::make_unique<PopulationSelector>(pop));
      a.run();

      PopulationDataView view(pop);
      FederationEngine b(std::make_unique<FedAvgStrategy>(init, FedAvgOptions{}),
                         view, pop.fleet(), session);
      b.set_selector(std::make_unique<PopulationSelector>(pop, &view));
      b.run();

      auto wa = a.strategy_as<FedAvgStrategy>().model().weights();
      auto wb = b.strategy_as<FedAvgStrategy>().model().weights();
      ASSERT_EQ(wa.size(), wb.size());
      for (std::size_t i = 0; i < wa.size(); ++i)
        EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0)
            << "seed " << seed << " threads " << threads << " tensor " << i;

      ASSERT_EQ(a.history().size(), b.history().size());
      for (std::size_t r = 0; r < a.history().size(); ++r) {
        EXPECT_EQ(a.history()[r].avg_loss, b.history()[r].avg_loss);
        EXPECT_EQ(a.history()[r].accuracy, b.history()[r].accuracy);
        EXPECT_EQ(a.history()[r].cum_macs, b.history()[r].cum_macs);
        EXPECT_EQ(a.history()[r].round_time_s, b.history()[r].round_time_s);
        EXPECT_EQ(a.history()[r].participants, b.history()[r].participants);
      }
      EXPECT_EQ(a.costs().network_bytes(), b.costs().network_bytes());

      // The lazy side never held more live clients than its pool allows.
      EXPECT_LE(view.pool().resident(), pcfg.pool_capacity);
      EXPECT_GT(view.pool().materializations(), 0u);
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(PopulationParityTest, LazyFederationRunsOverSocketTransportToo) {
  // Population selection + cohort pool + socket loopback composed: still
  // bitwise identical to the eager SimTransport run.
  Population pop(tiny_pop(16, 19));
  const FederatedDataset eager = pop.materialize_all();
  Rng mrng(5);
  Model init(tiny_model(), mrng);

  SessionConfig session;
  session.rounds = 2;
  session.clients_per_round = 4;
  session.local.steps = 2;
  session.local.batch = 6;
  session.seed = 7;
  session.use_fabric = true;

  FederationEngine a(std::make_unique<FedAvgStrategy>(init, FedAvgOptions{}),
                     eager, pop.fleet(), session);
  a.set_selector(std::make_unique<PopulationSelector>(pop));
  a.run();

  session.with_socket_transport();
  PopulationDataView view(pop);
  FederationEngine b(std::make_unique<FedAvgStrategy>(init, FedAvgOptions{}),
                     view, pop.fleet(), session);
  b.set_selector(std::make_unique<PopulationSelector>(pop, &view));
  b.run();

  ASSERT_NE(b.fabric(), nullptr);
  EXPECT_EQ(b.fabric()->transport().name(), "socket");
  auto wa = a.strategy_as<FedAvgStrategy>().model().weights();
  auto wb = b.strategy_as<FedAvgStrategy>().model().weights();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0) << "tensor " << i;
}

}  // namespace
}  // namespace fedtrans
