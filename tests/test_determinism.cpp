// Determinism invariants: the README promises whole runs replay
// bit-identically from a seed. These tests pin that promise for the
// extension components (async runner, selectors, RNG state transplant).

#include <gtest/gtest.h>

#include <sstream>

#include "fl/async.hpp"
#include "fl/selection.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

DatasetConfig tiny_data() {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = 10;
  cfg.mean_train_samples = 18;
  cfg.min_train_samples = 10;
  cfg.eval_samples = 8;
  cfg.seed = 71;
  return cfg;
}

std::vector<DeviceProfile> tiny_fleet() {
  FleetConfig cfg;
  cfg.num_devices = 10;
  cfg.seed = 4;
  cfg.with_median_capacity(5e6);
  return sample_fleet(cfg);
}

TEST(DeterminismTest, RngStateTransplantReplaysStream) {
  Rng a(123);
  for (int i = 0; i < 17; ++i) a.next_u64();
  Rng b(999);  // different seed, state overwritten below
  b.set_state(a.state());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(DeterminismTest, RngStateUnaffectedByReading) {
  Rng a(5);
  const auto s1 = a.state();
  const auto s2 = a.state();
  EXPECT_EQ(s1, s2);
  Rng b(5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(DeterminismTest, FedBuffSameSeedSameTrajectory) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet();
  Rng rng(8);
  Model init(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  AsyncRunConfig cfg;
  cfg.concurrency = 3;
  cfg.buffer_size = 2;
  cfg.aggregations = 5;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.seed = 42;

  FedBuffRunner a(init, data, fleet, cfg);
  FedBuffRunner b(init, data, fleet, cfg);
  a.run();
  b.run();
  EXPECT_EQ(a.now_s(), b.now_s());
  auto wa = a.model().weights();
  auto wb = b.model().weights();
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0);
}

TEST(DeterminismTest, FedBuffDifferentSeedDiverges) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet();
  Rng rng(8);
  Model init(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  AsyncRunConfig cfg;
  cfg.concurrency = 3;
  cfg.buffer_size = 2;
  cfg.aggregations = 5;
  cfg.local.steps = 3;
  cfg.local.batch = 6;

  cfg.seed = 1;
  FedBuffRunner a(init, data, fleet, cfg);
  cfg.seed = 2;
  FedBuffRunner b(init, data, fleet, cfg);
  a.run();
  b.run();
  double diff = 0.0;
  auto wa = a.model().weights();
  auto wb = b.model().weights();
  for (std::size_t i = 0; i < wa.size(); ++i)
    diff += testing::max_abs_diff(wa[i], wb[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(DeterminismTest, SelectorsAreDeterministicGivenRngState) {
  for (SelectorKind kind : {SelectorKind::Uniform, SelectorKind::Oort,
                            SelectorKind::PowerOfChoice}) {
    auto sa = make_selector(kind);
    auto sb = make_selector(kind);
    Rng ra(77), rb(77);
    for (int round = 0; round < 8; ++round) {
      auto pa = sa->select(30, 6, ra);
      auto pb = sb->select(30, 6, rb);
      EXPECT_EQ(pa, pb) << sa->name() << " round " << round;
      for (int c : pa) {
        sa->report(c, 0.1 * c, 10);
        sb->report(c, 0.1 * c, 10);
      }
    }
  }
}

TEST(DeterminismTest, OortStateRoundTripPreservesDecisions) {
  OortSelector a;
  Rng seed_rng(13);
  for (int round = 0; round < 5; ++round)
    for (int c : a.select(20, 5, seed_rng)) a.report(c, seed_rng.uniform(), 8);

  std::stringstream ss;
  a.save_state(ss);
  OortSelector b;
  b.load_state(ss);

  Rng ra(99), rb(99);
  for (int round = 0; round < 5; ++round)
    EXPECT_EQ(a.select(20, 5, ra), b.select(20, 5, rb)) << round;
}

}  // namespace
}  // namespace fedtrans
