// Socket-transport tests: (1) incremental wire-frame reassembly — a frame
// fed to the FrameAssembler one byte at a time (or many frames in odd-sized
// chunks) pops out whole and decodes cleanly, short buffers report
// NeedMoreBytes instead of corruption, and a corrupted payload is still
// rejected by the checksum at decode time; (2) frames pushed through the
// real socketpair channel — including torn writes and tiny read chunks —
// arrive with envelope metadata and bytes identical to SimTransport's, in
// the same delivery order, with the shared fault injection drawing the same
// faults on both transports; (3) fault-free FedAvg and FedTrans sessions
// over SocketTransport loopback are bitwise identical to SimTransport
// sessions; (4) the listener/connector helpers move frames between real
// endpoints with incremental reads; (5) fedtrans_socket_* metrics tie out
// against FabricStats byte-for-byte.

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "common/thread_pool.hpp"
#include "core/trainer.hpp"
#include "fl/runner.hpp"
#include "net/server.hpp"
#include "net/socket_transport.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

DatasetConfig tiny_data(int clients = 12) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 16;
  cfg.min_train_samples = 10;
  cfg.eval_samples = 8;
  cfg.noise = 0.35;
  cfg.seed = 17;
  return cfg;
}

std::vector<DeviceProfile> tiny_fleet(int n, std::uint64_t seed = 9) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.seed = seed;
  cfg.with_median_capacity(5e6);
  return sample_fleet(cfg);
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

std::string sample_frame(std::uint32_t round, std::int32_t sender,
                         int payload_scale) {
  FabricMessage msg;
  msg.type = MsgType::UpdateUp;
  msg.round = round;
  msg.sender = sender;
  msg.receiver = kServerId;
  msg.task = 3;
  msg.avg_loss = 0.5;
  msg.num_samples = 10;
  msg.macs_used = 1e6;
  msg.weights.push_back(Tensor({payload_scale, 3}));
  Rng rng(round + 99);
  msg.weights.back().randn(rng, 0.5f);
  return encode_message(msg);
}

TEST(FrameAssemblerTest, ByteAtATimeReassembly) {
  const std::string frame = sample_frame(1, 4, 5);
  FrameAssembler assembler;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    assembler.feed(frame.data() + i, 1);
    EXPECT_FALSE(assembler.next_frame().has_value())
        << "frame completed early at byte " << i;
  }
  assembler.feed(frame.data() + frame.size() - 1, 1);
  auto out = assembler.next_frame();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, frame);
  EXPECT_EQ(assembler.buffered(), 0u);

  const FabricMessage msg = decode_message(*out);
  EXPECT_EQ(msg.type, MsgType::UpdateUp);
  EXPECT_EQ(msg.sender, 4);
}

TEST(FrameAssemblerTest, ManyFramesAcrossOddChunks) {
  std::string stream;
  std::vector<std::string> frames;
  for (int i = 0; i < 7; ++i) {
    frames.push_back(sample_frame(static_cast<std::uint32_t>(i), i, 2 + i));
    stream += frames.back();
  }
  FrameAssembler assembler;
  std::vector<std::string> got;
  // Feed in chunks of 13 bytes — frames straddle every chunk boundary.
  for (std::size_t off = 0; off < stream.size(); off += 13) {
    assembler.feed(stream.data() + off, std::min<std::size_t>(13, stream.size() - off));
    while (auto f = assembler.next_frame()) got.push_back(std::move(*f));
  }
  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) EXPECT_EQ(got[i], frames[i]);
}

TEST(FrameAssemblerTest, ShortBuffersAreNeedMoreBytesNotErrors) {
  const std::string frame = sample_frame(2, 1, 4);
  std::size_t total = 0;
  // Every proper prefix — header fragments included — is "keep reading".
  EXPECT_EQ(try_frame_size(std::string_view(frame).substr(0, 3), total),
            FrameStatus::NeedMoreBytes);
  EXPECT_EQ(try_frame_size(std::string_view(frame).substr(0, kWireHeaderBytes),
                           total),
            FrameStatus::NeedMoreBytes);
  EXPECT_EQ(try_frame_size(
                std::string_view(frame).substr(0, frame.size() - 1), total),
            FrameStatus::NeedMoreBytes);
  EXPECT_EQ(try_frame_size(frame, total), FrameStatus::FrameReady);
  EXPECT_EQ(total, frame.size());
}

TEST(FrameAssemblerTest, BadMagicIsStreamCorruption) {
  std::string garbage = sample_frame(3, 2, 4);
  garbage[0] = 'X';  // clobber the magic
  FrameAssembler assembler;
  assembler.feed(garbage);
  EXPECT_THROW(assembler.next_frame(), Error);
}

TEST(FrameAssemblerTest, CorruptPayloadStillRejectedByChecksum) {
  std::string frame = sample_frame(4, 5, 6);
  frame[frame.size() - 2] ^= 0x20;  // flip a payload byte
  FrameAssembler assembler;
  assembler.feed(frame);
  // Framing only checks lengths — the frame pops out...
  auto out = assembler.next_frame();
  ASSERT_TRUE(out.has_value());
  // ...and the decoder's checksum catches the corruption.
  EXPECT_THROW(decode_message(*out), Error);
}

TEST(SocketTransportTest, TornWritesAndTinyReadsMatchSimBitwise) {
  auto fleet = tiny_fleet(6);
  SocketOptions chunky;
  chunky.read_chunk = 7;   // frames arrive split across many reads
  chunky.write_chunk = 5;  // and leave in torn writes
  SimTransport sim(fleet, {}, 0);
  SocketTransport sock(fleet, {}, 0, chunky);

  std::vector<std::string> frames;
  for (int c = 0; c < 6; ++c)
    frames.push_back(sample_frame(1, c, 3 + c));

  for (int c = 0; c < 6; ++c) {
    ASSERT_TRUE(sim.send(c, kServerId, frames[static_cast<std::size_t>(c)],
                         0.25 * c));
    ASSERT_TRUE(sock.send(c, kServerId, frames[static_cast<std::size_t>(c)],
                          0.25 * c));
  }

  const auto via_sim = sim.drain(kServerId);
  const auto via_sock = sock.drain(kServerId);
  ASSERT_EQ(via_sim.size(), via_sock.size());
  for (std::size_t i = 0; i < via_sim.size(); ++i) {
    EXPECT_EQ(via_sim[i].src, via_sock[i].src);
    EXPECT_EQ(via_sim[i].dst, via_sock[i].dst);
    EXPECT_EQ(via_sim[i].seq, via_sock[i].seq);
    EXPECT_EQ(via_sim[i].sent_at_s, via_sock[i].sent_at_s);
    EXPECT_EQ(via_sim[i].deliver_at_s, via_sock[i].deliver_at_s);
    EXPECT_EQ(via_sim[i].frame, via_sock[i].frame) << "frame bytes differ";
    EXPECT_NO_THROW(decode_message(via_sock[i].frame));
  }
  EXPECT_EQ(sim.stats().frames_delivered.load(),
            sock.stats().frames_delivered.load());
  EXPECT_EQ(sim.stats().bytes_delivered.load(),
            sock.stats().bytes_delivered.load());
}

TEST(SocketTransportTest, FaultDrawsAreTransportIndependent) {
  auto fleet = tiny_fleet(8);
  FaultConfig faults;
  faults.drop_prob = 0.3;
  faults.dup_prob = 0.2;
  faults.reorder_prob = 0.25;
  faults.seed = 77;
  SimTransport sim(fleet, faults, 0);
  SocketTransport sock(fleet, faults, 0, {});

  int delivered_sim = 0, delivered_sock = 0;
  for (int i = 0; i < 40; ++i) {
    const int c = i % 8;
    const std::string frame = sample_frame(static_cast<std::uint32_t>(i), c, 2);
    delivered_sim += sim.send(c, kServerId, frame, 0.1 * i) ? 1 : 0;
    delivered_sock += sock.send(c, kServerId, frame, 0.1 * i) ? 1 : 0;
  }
  EXPECT_EQ(delivered_sim, delivered_sock)
      << "the same frames must draw the same drops on both transports";
  EXPECT_EQ(sim.stats().frames_dropped.load(),
            sock.stats().frames_dropped.load());
  EXPECT_EQ(sim.stats().frames_duplicated.load(),
            sock.stats().frames_duplicated.load());
  EXPECT_EQ(sim.stats().frames_reordered.load(),
            sock.stats().frames_reordered.load());

  const auto a = sim.drain(kServerId);
  const auto b = sock.drain(kServerId);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].deliver_at_s, b[i].deliver_at_s);
    EXPECT_EQ(a[i].frame, b[i].frame);
  }
}

TEST(SocketTransportTest, LargeFramesSurviveKernelBufferPressure) {
  // A frame far bigger than a socketpair's kernel buffer (~200 KB default)
  // forces the writer through its pump-to-relieve path.
  auto fleet = tiny_fleet(2);
  SocketTransport sock(fleet, {}, 0, {});
  const std::string big = sample_frame(1, 0, 300000);  // ~3.6 MB payload
  ASSERT_GT(big.size(), 1000000u);
  ASSERT_TRUE(sock.send(0, kServerId, big, 0.0));
  auto env = sock.try_recv(kServerId);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->frame, big);
  EXPECT_FALSE(sock.try_recv(kServerId).has_value());
}

TEST(SocketTransportTest, SocketMetricsTieOutAgainstFabricStats) {
  auto before = MetricsRegistry::global().snapshot();
  const double frames0 = before.counters["fedtrans_socket_frames_total"];
  const double bytes0 = before.counters["fedtrans_socket_bytes_total"];

  auto fleet = tiny_fleet(4);
  FaultConfig faults;
  faults.dup_prob = 0.4;  // duplicates cross the socket twice
  faults.seed = 5;
  SocketTransport sock(fleet, faults, 0, {});
  for (int i = 0; i < 20; ++i)
    sock.send(i % 4, kServerId, sample_frame(static_cast<std::uint32_t>(i),
                                             i % 4, 2));

  auto after = MetricsRegistry::global().snapshot();
  const auto delivered = sock.stats().frames_delivered.load();
  const auto delivered_bytes = sock.stats().bytes_delivered.load();
  // Every delivered envelope (duplicates included) crossed the socket
  // exactly once, prefixed by one envelope header.
  EXPECT_EQ(after.counters["fedtrans_socket_frames_total"] - frames0,
            static_cast<double>(delivered));
  EXPECT_EQ(after.counters["fedtrans_socket_bytes_total"] - bytes0,
            static_cast<double>(delivered_bytes +
                                kSocketEnvelopeBytes * delivered));
}

TEST(SocketParityTest, FedAvgSocketLoopbackMatchesSimBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();

  for (std::uint64_t seed : {11ULL, 42ULL}) {
    Rng rng(3 + seed);
    Model init(tiny_model(), rng);
    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);

      FlRunConfig on_sim;
      on_sim.rounds = 3;
      on_sim.clients_per_round = 4;
      on_sim.local.steps = 3;
      on_sim.local.batch = 6;
      on_sim.eval_every = 2;
      on_sim.eval_clients = 6;
      on_sim.seed = seed;
      on_sim.use_fabric = true;
      FedAvgRunner a(init, data, fleet, on_sim);
      a.run();

      FlRunConfig on_socket = on_sim;
      SocketOptions chunky;
      chunky.read_chunk = 11;  // exercise reassembly on every frame
      chunky.write_chunk = 9;
      on_socket.with_socket_transport(chunky);
      FedAvgRunner b(init, data, fleet, on_socket);
      b.run();

      ASSERT_NE(b.fabric(), nullptr);
      EXPECT_EQ(b.fabric()->transport().name(), "socket");
      EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u);

      auto wa = a.model().weights();
      auto wb = b.model().weights();
      ASSERT_EQ(wa.size(), wb.size());
      for (std::size_t i = 0; i < wa.size(); ++i)
        EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0) << "tensor " << i;

      ASSERT_EQ(a.history().size(), b.history().size());
      for (std::size_t r = 0; r < a.history().size(); ++r) {
        EXPECT_EQ(a.history()[r].avg_loss, b.history()[r].avg_loss);
        EXPECT_EQ(a.history()[r].accuracy, b.history()[r].accuracy);
        EXPECT_EQ(a.history()[r].cum_macs, b.history()[r].cum_macs);
      }
      EXPECT_EQ(a.costs().network_bytes(), b.costs().network_bytes());
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(SocketParityTest, FedTransSocketLoopbackMatchesSimBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());

  FedTransConfig cfg;
  cfg.rounds = 6;
  cfg.clients_per_round = 4;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.gamma = 2;
  cfg.doc_delta = 2;
  cfg.beta = 10.0;
  cfg.act_window = 2;
  cfg.max_models = 3;
  cfg.seed = 13;
  cfg.use_fabric = true;

  FedTransTrainer a(tiny_model(), data, fleet, cfg);
  cfg.with_socket_transport();
  FedTransTrainer b(tiny_model(), data, fleet, cfg);
  a.run();
  b.run();

  ASSERT_EQ(a.num_models(), b.num_models());
  EXPECT_GE(a.num_models(), 2) << "transformation should have fired";
  for (int k = 0; k < a.num_models(); ++k) {
    auto wa = a.model(k).weights();
    auto wb = b.model(k).weights();
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i)
      EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0)
          << "model " << k << " tensor " << i;
  }
}

TEST(SocketListenerTest, UnixFramesCrossProcessBoundaryStyleSockets) {
  const std::string path = ::testing::TempDir() + "fedtrans_ut.sock";
  SocketListener listener = SocketListener::bind_unix(path);

  const std::string f1 = sample_frame(1, 2, 6);
  const std::string f2 = sample_frame(2, 3, 4);
  std::thread peer([&] {
    const int fd = connect_unix(path);
    send_frame_fd(fd, f1);
    send_frame_fd(fd, f2);
    ::close(fd);
  });

  const int fd = listener.accept_fd();
  FdFrameReader reader(fd, /*read_chunk=*/5);  // force split reads
  EXPECT_EQ(reader.read_frame(), f1);
  EXPECT_EQ(reader.read_frame(), f2);
  peer.join();
  ::close(fd);
}

TEST(SocketListenerTest, TcpLoopbackRoundTrip) {
  SocketListener listener = SocketListener::bind_tcp(0);
  ASSERT_GT(listener.port(), 0);

  const std::string f = sample_frame(9, 1, 8);
  std::thread peer([&] {
    const int fd = connect_tcp("127.0.0.1", listener.port());
    send_frame_fd(fd, f);
    ::close(fd);
  });

  const int fd = listener.accept_fd();
  FdFrameReader reader(fd);
  EXPECT_EQ(reader.read_frame(), f);
  peer.join();
  ::close(fd);
}

}  // namespace
}  // namespace fedtrans
