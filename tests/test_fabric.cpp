// Federation-fabric tests: (1) a fault-free fabric run — wire protocol +
// simulated transport + multithreaded FederationServer — is bitwise
// identical to the direct in-process FedAvg path, across seeds and thread
// counts; (2) under message loss and client dropout, rounds still terminate
// and every lost update is accounted in CostMeter/RoundRecord; (3) the
// simulated transport's fault injection is deterministic and its byte
// accounting is exact; (4) hierarchical rounds — 2-level shards and deep
// (3/4-level) trees of any branching — are bitwise identical to flat ones
// for FedAvg, FedTrans and HeteroFL; (5) the retry policy resends lost
// UpdateUps within max_retries and counts exhausted retries as lost
// updates, with resend traffic billed; (6) fabric-backed async (FedBuff)
// sessions complete over real messages with delivery-time completion
// ordering, flat or routed through the tree (bitwise-equal when
// fault-free); (7) numeric partial aggregation matches flat reductions
// within 1e-5 relative tolerance, keeps metrics/billing bitwise, and is
// bitwise self-consistent across thread counts (and across shard counts
// with singleton leaves); (8) dead leaves fail over to siblings with the
// redirect billed and recorded.

#include <gtest/gtest.h>

#include "baselines/hetero_fl.hpp"
#include "common/thread_pool.hpp"
#include "core/trainer.hpp"
#include "fl/async.hpp"
#include "fl/runner.hpp"
#include "net/server.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

DatasetConfig tiny_data(int clients = 12) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 16;
  cfg.min_train_samples = 10;
  cfg.eval_samples = 8;
  cfg.noise = 0.35;
  cfg.seed = 17;
  return cfg;
}

std::vector<DeviceProfile> tiny_fleet(int n, std::uint64_t seed = 9) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.seed = seed;
  cfg.with_median_capacity(5e6);
  return sample_fleet(cfg);
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

FlRunConfig base_cfg(std::uint64_t seed) {
  FlRunConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 4;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.eval_every = 2;
  cfg.eval_clients = 6;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(FedAvgRunner& a, FedAvgRunner& b) {
  auto wa = a.model().weights();
  auto wb = b.model().weights();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0) << "tensor " << i;

  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t r = 0; r < a.history().size(); ++r) {
    const auto& ra = a.history()[r];
    const auto& rb = b.history()[r];
    EXPECT_EQ(ra.round, rb.round);
    EXPECT_EQ(ra.avg_loss, rb.avg_loss) << "round " << r;
    EXPECT_EQ(ra.cum_macs, rb.cum_macs) << "round " << r;
    EXPECT_EQ(ra.round_time_s, rb.round_time_s) << "round " << r;
    EXPECT_EQ(ra.accuracy, rb.accuracy) << "round " << r;
    EXPECT_EQ(ra.participants, rb.participants) << "round " << r;
    EXPECT_EQ(ra.lost_updates, rb.lost_updates) << "round " << r;
    EXPECT_EQ(ra.leaf_failovers, rb.leaf_failovers) << "round " << r;
  }
  EXPECT_EQ(a.costs().total_macs(), b.costs().total_macs());
  EXPECT_EQ(a.costs().network_bytes(), b.costs().network_bytes());
}

TEST(FabricParityTest, FaultFreeFabricMatchesInProcessBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();

  for (std::uint64_t seed : {11ULL, 42ULL}) {
    Rng rng(3 + seed);
    Model init(tiny_model(), rng);

    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);

      FlRunConfig in_proc = base_cfg(seed);
      FedAvgRunner a(init, data, fleet, in_proc);
      a.run();

      FlRunConfig on_fabric = base_cfg(seed);
      on_fabric.use_fabric = true;
      FedAvgRunner b(init, data, fleet, on_fabric);
      b.run();

      ASSERT_NE(b.fabric(), nullptr);
      EXPECT_EQ(b.fabric()->phase(), FederationServer::Phase::Aggregate)
          << "round state machine should rest in its final phase";
      EXPECT_EQ(b.fabric()->stats().frames_dropped.load(), 0u);
      EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u)
          << "undecodable frames on a clean transport mean a codec bug";
      expect_identical(a, b);
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(FabricParityTest, FabricWithStragglerPolicyMatchesInProcess) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), /*seed=*/4);
  Rng rng(5);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(21);
  cfg.overcommit = 0.5;
  cfg.deadline_quantile = 0.7;  // deadline-trim the straggler tail
  FedAvgRunner a(init, data, fleet, cfg);
  a.run();

  FlRunConfig fab = cfg;
  fab.use_fabric = true;
  FedAvgRunner b(init, data, fleet, fab);
  b.run();
  expect_identical(a, b);
  // With over-selection some rounds must actually drop stragglers.
  int lost = 0;
  for (const auto& rec : b.history()) lost += rec.lost_updates;
  EXPECT_GT(lost, 0);
}

TEST(FabricFaultTest, RoundsTerminateAndLossesAreAccounted) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(7);
  cfg.rounds = 5;
  cfg.clients_per_round = 5;
  cfg.eval_every = 0;
  cfg.overcommit = 0.4;
  cfg.deadline_quantile = 0.8;
  cfg.use_fabric = true;
  cfg.fabric_faults.drop_prob = 0.25;
  cfg.fabric_faults.dup_prob = 0.15;
  cfg.fabric_faults.reorder_prob = 0.2;
  cfg.fabric_faults.dropout_prob = 0.25;
  cfg.fabric_faults.seed = 1234;

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();  // must terminate despite lost invitations/models/updates

  ASSERT_EQ(runner.history().size(), static_cast<std::size_t>(cfg.rounds));
  int participants = 0, lost = 0;
  for (const auto& rec : runner.history()) {
    EXPECT_GE(rec.participants, 0);
    EXPECT_GE(rec.lost_updates, 0);
    participants += rec.participants;
    lost += rec.lost_updates;
  }
  EXPECT_GT(participants, 0) << "some updates must still get through";
  EXPECT_GT(lost, 0) << "heavy fault injection must lose some updates";

  // CostMeter consistency with the per-round records: each aggregated
  // update moved the model down and up (2 × model bytes, no compression);
  // each lost update still burned its downlink.
  const double model_bytes =
      static_cast<double>(runner.model().param_bytes());
  EXPECT_NEAR(runner.costs().network_bytes(),
              model_bytes * (2.0 * participants + lost), 1.0);

  // Fault machinery actually fired.
  ASSERT_NE(runner.fabric(), nullptr);
  const FabricStats& stats = runner.fabric()->stats();
  EXPECT_GT(stats.frames_dropped.load(), 0u);
  EXPECT_GT(stats.frames_duplicated.load(), 0u);
  EXPECT_GT(stats.frames_reordered.load(), 0u);
  EXPECT_GT(stats.client_dropouts.load(), 0u);
  EXPECT_GT(stats.frames_sent.load(), stats.frames_dropped.load());
  // Fault injection drops/duplicates/reorders whole frames — it never
  // corrupts bytes, so nothing should have failed to decode.
  EXPECT_EQ(stats.frames_rejected.load(), 0u);
}

TEST(FabricFaultTest, FaultRunsAreDeterministicAcrossThreadCounts) {
  auto data = FederatedDataset::generate(tiny_data(8));
  auto fleet = tiny_fleet(8);
  Rng rng(2);
  Model init(tiny_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  FlRunConfig cfg = base_cfg(13);
  cfg.eval_every = 0;
  cfg.use_fabric = true;
  cfg.fabric_faults.drop_prob = 0.3;
  cfg.fabric_faults.dropout_prob = 0.2;

  ThreadPool::set_global_threads(1);
  FedAvgRunner a(init, data, fleet, cfg);
  a.run();
  ThreadPool::set_global_threads(4);
  FedAvgRunner b(init, data, fleet, cfg);
  b.run();
  ThreadPool::set_global_threads(prev_threads);

  expect_identical(a, b);
  EXPECT_EQ(a.fabric()->stats().frames_dropped.load(),
            b.fabric()->stats().frames_dropped.load());
}

TEST(SimTransportTest, DeterministicFaultsAndExactByteAccounting) {
  auto fleet = tiny_fleet(4);
  FaultConfig faults;
  faults.drop_prob = 0.5;
  faults.seed = 77;

  auto run_once = [&] {
    SimTransport net(fleet, faults);
    std::vector<bool> delivered;
    for (int i = 0; i < 32; ++i)
      delivered.push_back(net.send(kServerId, i % 4,
                                   std::string("payload-") +
                                       std::to_string(i)));
    return std::make_pair(delivered, net.stats().bytes_delivered.load());
  };
  auto [d1, bytes1] = run_once();
  auto [d2, bytes2] = run_once();
  EXPECT_EQ(d1, d2) << "fault draws must be schedule-independent";
  EXPECT_EQ(bytes1, bytes2);

  // Delivered frames arrive in (deliver_at, seq) order per mailbox and
  // byte counters match exactly what was enqueued.
  SimTransport net(fleet, FaultConfig{});
  EXPECT_TRUE(net.send(kServerId, 1, "aaaa"));
  EXPECT_TRUE(net.send(kServerId, 1, "bb"));
  EXPECT_TRUE(net.send(1, kServerId, "cc", /*sent_at_s=*/2.0));
  auto inbox = net.drain(1);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_LE(inbox[0].deliver_at_s, inbox[1].deliver_at_s);
  EXPECT_EQ(net.stats().bytes_sent.load(), 8u);
  EXPECT_EQ(net.stats().bytes_delivered.load(), 8u);
  auto server_box = net.drain(kServerId);
  ASSERT_EQ(server_box.size(), 1u);
  EXPECT_GT(server_box[0].deliver_at_s, 2.0);
  EXPECT_FALSE(net.try_recv(kServerId).has_value());
}

TEST(SimTransportTest, ReorderingDelaysDeliveryTimestamps) {
  auto fleet = tiny_fleet(2);
  SimTransport clean(fleet, FaultConfig{});
  FaultConfig faults;
  faults.reorder_prob = 1.0;
  SimTransport shuffled(fleet, faults);
  ASSERT_TRUE(clean.send(kServerId, 0, "0123456789abcdef"));
  ASSERT_TRUE(shuffled.send(kServerId, 0, "0123456789abcdef"));
  auto a = clean.drain(0);
  auto b = shuffled.drain(0);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  // A reordered frame lands one extra link transfer later in simulated
  // time — twice the clean latency for a single frame.
  EXPECT_DOUBLE_EQ(b[0].deliver_at_s, 2.0 * a[0].deliver_at_s);
  EXPECT_EQ(shuffled.stats().frames_reordered.load(), 1u);
}

TEST(SimTransportTest, DuplicatesAreDeliveredTwiceAndDeduplicatedUpstream) {
  auto fleet = tiny_fleet(2);
  FaultConfig faults;
  faults.dup_prob = 1.0;
  SimTransport net(fleet, faults);
  EXPECT_TRUE(net.send(kServerId, 0, "hello"));
  auto inbox = net.drain(0);
  EXPECT_EQ(inbox.size(), 2u);
  EXPECT_EQ(net.stats().frames_duplicated.load(), 1u);
}

TEST(SimTransportTest, AggregatorEndpointsAreBackboneLinks) {
  auto fleet = tiny_fleet(2);
  SimTransport net(fleet, FaultConfig{}, /*num_aggregators=*/2);
  // Root ↔ aggregator traffic rides the free backbone: zero latency.
  EXPECT_TRUE(net.send(kServerId, aggregator_id(0), "bundle"));
  EXPECT_TRUE(net.send(aggregator_id(1), kServerId, "partial", 3.0));
  auto agg0 = net.drain(aggregator_id(0));
  ASSERT_EQ(agg0.size(), 1u);
  EXPECT_DOUBLE_EQ(agg0[0].deliver_at_s, 0.0);
  auto root = net.drain(kServerId);
  ASSERT_EQ(root.size(), 1u);
  EXPECT_DOUBLE_EQ(root[0].deliver_at_s, 3.0);
  // Aggregator → client keeps the client's radio latency.
  EXPECT_TRUE(net.send(aggregator_id(0), 1, "0123456789abcdef"));
  auto client = net.drain(1);
  ASSERT_EQ(client.size(), 1u);
  EXPECT_GT(client[0].deliver_at_s, 0.0);
}

// ---------------------------------------------------------------------------
// Sharded (hierarchical) aggregation: a 2-level tree of shard aggregators
// must be bitwise identical to the flat FederationServer when fault-free —
// the bundles carry per-task updates verbatim and the engine's fixed-order
// reduction is untouched.

TEST(ShardedParityTest, FedAvgShardedMatchesFlatBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();

  for (std::uint64_t seed : {11ULL, 42ULL}) {
    Rng rng(3 + seed);
    Model init(tiny_model(), rng);

    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);

      FlRunConfig flat = base_cfg(seed);
      flat.use_fabric = true;
      FedAvgRunner a(init, data, fleet, flat);
      a.run();

      FlRunConfig sharded = base_cfg(seed);
      sharded.use_fabric = true;
      sharded.topology.levels = 2;
      sharded.topology.shards = 3;
      FedAvgRunner b(init, data, fleet, sharded);
      b.run();

      ASSERT_NE(b.fabric(), nullptr);
      EXPECT_TRUE(b.fabric()->sharded());
      EXPECT_EQ(b.fabric()->stats().frames_dropped.load(), 0u);
      EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u)
          << "undecodable frames on a clean transport mean a codec bug";
      EXPECT_EQ(b.fabric()->stats().frames_retried.load(), 0u);
      expect_identical(a, b);
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(ShardedParityTest, ShardCountSweepAllMatchInProcess) {
  // 1, 2 and 4 shards (including the degenerate one-leaf tree) all
  // reproduce the in-process run exactly; the root's downlink fan-out
  // shrinks with the shard count while client traffic stays put.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(9);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(5);
  FedAvgRunner ref(init, data, fleet, cfg);
  ref.run();

  for (int shards : {1, 2, 4}) {
    FlRunConfig sh = base_cfg(5);
    sh.use_fabric = true;
    sh.topology.levels = 2;
    sh.topology.shards = shards;
    FedAvgRunner b(init, data, fleet, sh);
    b.run();
    expect_identical(ref, b);
  }
}

TEST(ShardedParityTest, FedTransShardedMatchesFlatBitwise) {
  // The growing multi-model family over the sharded tree: family payloads
  // ride the ShardDown body table, partial aggregates reassemble at the
  // root, and the trajectory (including transformations) stays bit-exact.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();
  for (std::uint64_t seed : {13ULL, 29ULL}) {
    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);
      FedTransConfig cfg;
      cfg.rounds = 6;
      cfg.clients_per_round = 4;
      cfg.local.steps = 3;
      cfg.local.batch = 6;
      cfg.gamma = 2;
      cfg.doc_delta = 2;
      cfg.beta = 10.0;
      cfg.act_window = 2;
      cfg.max_models = 3;
      cfg.seed = seed;
      cfg.use_fabric = true;

      FedTransTrainer a(tiny_model(), data, fleet, cfg);
      cfg.topology.levels = 2;
      cfg.topology.shards = 2;
      FedTransTrainer b(tiny_model(), data, fleet, cfg);
      a.run();
      b.run();

      ASSERT_EQ(a.num_models(), b.num_models());
      EXPECT_GE(a.num_models(), 2) << "transformation should have fired";
      for (int k = 0; k < a.num_models(); ++k) {
        auto wa = a.model(k).weights();
        auto wb = b.model(k).weights();
        ASSERT_EQ(wa.size(), wb.size());
        for (std::size_t i = 0; i < wa.size(); ++i)
          EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0)
              << "model " << k << " tensor " << i;
      }
      ASSERT_EQ(a.history().size(), b.history().size());
      for (std::size_t r = 0; r < a.history().size(); ++r) {
        EXPECT_EQ(a.history()[r].avg_loss, b.history()[r].avg_loss);
        EXPECT_EQ(a.history()[r].accuracy, b.history()[r].accuracy);
      }
      EXPECT_EQ(a.costs().total_macs(), b.costs().total_macs());
      EXPECT_EQ(a.costs().network_bytes(), b.costs().network_bytes());
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(ShardedParityTest, HeteroFLShardedMatchesFlatBitwise) {
  // Ladder submodels over the tree: each shard bundle's body table holds
  // one encoding per capacity level present in the shard.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), /*seed=*/4);
  const int prev_threads = ThreadPool::global().size();
  for (std::uint64_t seed : {7ULL, 19ULL}) {
    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);
      BaselineConfig cfg;
      cfg.rounds = 4;
      cfg.clients_per_round = 5;
      cfg.local.steps = 3;
      cfg.local.batch = 6;
      cfg.eval_every = 2;
      cfg.eval_clients = 6;
      cfg.seed = seed;
      cfg.use_fabric = true;

      HeteroFLRunner a(tiny_model(), data, fleet, cfg);
      cfg.topology.levels = 2;
      cfg.topology.shards = 3;
      HeteroFLRunner b(tiny_model(), data, fleet, cfg);
      a.run();
      b.run();

      auto wa = a.global().weights();
      auto wb = b.global().weights();
      ASSERT_EQ(wa.size(), wb.size());
      for (std::size_t i = 0; i < wa.size(); ++i)
        EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0) << "tensor " << i;
      ASSERT_EQ(a.engine().history().size(), b.engine().history().size());
      for (std::size_t r = 0; r < a.engine().history().size(); ++r) {
        EXPECT_EQ(a.engine().history()[r].avg_loss,
                  b.engine().history()[r].avg_loss);
        EXPECT_EQ(a.engine().history()[r].accuracy,
                  b.engine().history()[r].accuracy);
      }
      EXPECT_EQ(a.engine().costs().network_bytes(),
                b.engine().costs().network_bytes());
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(ShardedFaultTest, ShardedFaultRunsTerminateDeterministically) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  FlRunConfig cfg = base_cfg(7);
  cfg.rounds = 5;
  cfg.clients_per_round = 6;
  cfg.eval_every = 0;
  cfg.use_fabric = true;
  cfg.topology.levels = 2;
  cfg.topology.shards = 2;
  cfg.fabric_faults.drop_prob = 0.2;
  cfg.fabric_faults.dup_prob = 0.1;
  cfg.fabric_faults.dropout_prob = 0.2;
  cfg.fabric_faults.seed = 321;

  ThreadPool::set_global_threads(1);
  FedAvgRunner a(init, data, fleet, cfg);
  a.run();
  ThreadPool::set_global_threads(4);
  FedAvgRunner b(init, data, fleet, cfg);
  b.run();
  ThreadPool::set_global_threads(prev_threads);

  expect_identical(a, b);
  int participants = 0, lost = 0;
  for (const auto& rec : a.history()) {
    participants += rec.participants;
    lost += rec.lost_updates;
  }
  EXPECT_GT(participants, 0);
  EXPECT_GT(lost, 0);
}

TEST(ShardedFaultTest, ShardedRetriesRecoverBundlesAndReconcileBilling) {
  // The sharded-only retry paths: lost ShardDown bundles (downlink,
  // retry_bytes_down) and lost PartialUp bundles / UpdateUps (uplink) are
  // resent and billed; the CostMeter reconciles byte-exactly against the
  // transport's retry counters, same as the flat invariant.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(7);
  cfg.rounds = 6;
  cfg.clients_per_round = 6;
  cfg.eval_every = 0;
  cfg.use_fabric = true;
  cfg.topology.levels = 2;
  cfg.topology.shards = 3;
  cfg.topology.max_retries = 2;
  cfg.topology.ack_timeout_s = 5.0;
  cfg.fabric_faults.drop_prob = 0.3;
  cfg.fabric_faults.seed = 42;

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();

  ASSERT_EQ(runner.history().size(), 6u);
  int participants = 0, lost = 0;
  for (const auto& rec : runner.history()) {
    participants += rec.participants;
    lost += rec.lost_updates;
  }
  EXPECT_GT(participants, 0);

  const FabricStats& stats = runner.fabric()->stats();
  EXPECT_GT(stats.frames_retried.load(), 0u);
  EXPECT_GT(stats.retry_bytes_down.load(), 0u)
      << "a 30% drop rate over 18 ShardDown bundles must lose at least one";
  const double model_bytes =
      static_cast<double>(runner.model().param_bytes());
  const double retry_bytes =
      static_cast<double>(stats.retry_bytes_down.load()) +
      static_cast<double>(stats.retry_bytes_up.load());
  EXPECT_NEAR(runner.costs().network_bytes(),
              model_bytes * (2.0 * participants + lost) + retry_bytes, 1.0);
}

// ---------------------------------------------------------------------------
// Retry / ack-timeout policy: lost UpdateUps are resent (flagged on the
// wire, billed through CostMeter); exhausted budgets surface as
// RoundRecord::lost_updates.

TEST(RetryPolicyTest, DroppedUpdatesAreResentWithinBudget) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(7);
  cfg.rounds = 4;
  cfg.clients_per_round = 6;
  cfg.eval_every = 0;
  cfg.use_fabric = true;
  cfg.fabric_faults.drop_prob = 0.25;
  cfg.fabric_faults.seed = 77;

  FedAvgRunner no_retry(init, data, fleet, cfg);
  no_retry.run();

  cfg.topology.max_retries = 3;
  cfg.topology.ack_timeout_s = 5.0;
  FedAvgRunner with_retry(init, data, fleet, cfg);
  with_retry.run();

  int p0 = 0, p1 = 0, lost1 = 0;
  for (const auto& rec : no_retry.history()) p0 += rec.participants;
  for (const auto& rec : with_retry.history()) {
    p1 += rec.participants;
    lost1 += rec.lost_updates;
  }
  const FabricStats& stats = with_retry.fabric()->stats();
  EXPECT_GT(stats.frames_retried.load(), 0u)
      << "drop_prob = 0.25 over 4 rounds must lose at least one UpdateUp";
  EXPECT_GT(p1, p0) << "retries must recover updates the no-retry run lost";
  ASSERT_EQ(with_retry.history().size(), 4u)
      << "rounds must complete under the retry policy";

  // Billing: every aggregated update moved the model down and up once, every
  // lost update spent its downlink, and every resend attempt is billed on
  // top — exactly the transport's retry byte counters.
  const double model_bytes =
      static_cast<double>(with_retry.model().param_bytes());
  const double retry_bytes =
      static_cast<double>(stats.retry_bytes_down.load()) +
      static_cast<double>(stats.retry_bytes_up.load());
  EXPECT_GT(retry_bytes, 0.0);
  EXPECT_NEAR(with_retry.costs().network_bytes(),
              model_bytes * (2.0 * p1 + lost1) + retry_bytes, 1.0);
}

TEST(RetryPolicyTest, ExhaustedRetriesCountAsLostUpdates) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(7);
  cfg.rounds = 5;
  cfg.clients_per_round = 6;
  cfg.eval_every = 0;
  cfg.use_fabric = true;
  cfg.fabric_faults.drop_prob = 0.55;
  cfg.fabric_faults.seed = 123;
  cfg.topology.max_retries = 1;
  cfg.topology.ack_timeout_s = 5.0;

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();

  ASSERT_EQ(runner.history().size(), 5u);
  int lost = 0;
  for (const auto& rec : runner.history()) lost += rec.lost_updates;
  EXPECT_GT(lost, 0)
      << "a 0.55 drop rate with one retry must exhaust some budgets";
  EXPECT_GT(runner.fabric()->stats().frames_retried.load(), 0u);

  // Determinism: the same faulty retry run replays bit-identically.
  FedAvgRunner again(init, data, fleet, cfg);
  again.run();
  expect_identical(runner, again);
}

// ---------------------------------------------------------------------------
// Fabric-backed async FedBuff: the event loop runs over real ModelDown /
// UpdateUp messages, completions are ordered by server-side delivery time,
// and ack-timeouts replace lost clients.

TEST(AsyncFabricTest, FaultFreeSessionCompletesWithDeliveryOrdering) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(8);
  Model init(tiny_model(), rng);

  AsyncRunConfig cfg;
  cfg.concurrency = 3;
  cfg.buffer_size = 2;
  cfg.aggregations = 6;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.eval_every = 3;
  cfg.eval_clients = 6;
  cfg.seed = 42;
  cfg.use_fabric = true;

  FedBuffRunner runner(init, data, fleet, cfg);
  runner.run();

  EXPECT_EQ(runner.aggregations_done(), cfg.aggregations);
  ASSERT_EQ(runner.history().size(),
            static_cast<std::size_t>(cfg.aggregations));
  // Delivery-time completion ordering: versions ship at nondecreasing
  // simulated instants, and no update was lost on a clean transport.
  double prev = 0.0;
  for (const auto& rec : runner.history()) {
    EXPECT_GE(rec.round_time_s, prev);
    prev = rec.round_time_s;
    EXPECT_EQ(rec.lost_updates, 0);
  }
  EXPECT_GT(runner.now_s(), 0.0);
  EXPECT_GE(runner.mean_staleness(), 0.0);

  const FederationServer* fabric = runner.engine().fabric();
  ASSERT_NE(fabric, nullptr);
  EXPECT_GT(fabric->stats().frames_sent.load(), 0u);
  EXPECT_EQ(fabric->stats().frames_dropped.load(), 0u);
  EXPECT_EQ(fabric->stats().frames_rejected.load(), 0u)
      << "undecodable frames on a clean transport mean a codec bug";

  // The engine billed each absorbed update's down+up transfer through the
  // strategy, so the meter moves.
  EXPECT_GT(runner.costs().network_bytes(), 0.0);
  EXPECT_GT(runner.costs().total_macs(), 0.0);
}

TEST(AsyncFabricTest, DeterministicAcrossThreadCounts) {
  auto data = FederatedDataset::generate(tiny_data(8));
  auto fleet = tiny_fleet(8);
  Rng rng(2);
  Model init(tiny_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  AsyncRunConfig cfg;
  cfg.concurrency = 3;
  cfg.buffer_size = 2;
  cfg.aggregations = 5;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.seed = 13;
  cfg.use_fabric = true;

  ThreadPool::set_global_threads(1);
  FedBuffRunner a(init, data, fleet, cfg);
  a.run();
  ThreadPool::set_global_threads(4);
  FedBuffRunner b(init, data, fleet, cfg);
  b.run();
  ThreadPool::set_global_threads(prev_threads);

  EXPECT_EQ(a.now_s(), b.now_s());
  auto wa = a.model().weights();
  auto wb = b.model().weights();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0) << "tensor " << i;
  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t r = 0; r < a.history().size(); ++r)
    EXPECT_EQ(a.history()[r].avg_loss, b.history()[r].avg_loss);
}

TEST(AsyncFabricTest, FaultyAsyncSessionAccountsLostUpdates) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(8);
  Model init(tiny_model(), rng);

  AsyncRunConfig cfg;
  cfg.concurrency = 4;
  cfg.buffer_size = 2;
  cfg.aggregations = 6;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.seed = 7;
  cfg.use_fabric = true;
  cfg.fabric_faults.drop_prob = 0.3;
  cfg.fabric_faults.dropout_prob = 0.15;
  cfg.fabric_faults.seed = 55;
  cfg.topology.max_retries = 1;
  cfg.topology.ack_timeout_s = 30.0;

  FedBuffRunner runner(init, data, fleet, cfg);
  runner.run();  // must terminate: timeouts replace lost clients

  EXPECT_EQ(runner.aggregations_done(), cfg.aggregations);
  int lost = 0;
  for (const auto& rec : runner.history()) lost += rec.lost_updates;
  EXPECT_GT(lost, 0) << "heavy fault injection must lose some updates";
  const FabricStats& stats = runner.engine().fabric()->stats();
  EXPECT_GT(stats.frames_dropped.load(), 0u);
  EXPECT_GT(stats.frames_retried.load(), 0u);
  EXPECT_EQ(stats.frames_rejected.load(), 0u);

  // The ack-timeout is retry-aware (one timeout per allowed uplink
  // attempt), so a resent update can actually land and be folded in —
  // the same session without a retry budget must lose strictly more.
  cfg.topology.max_retries = 0;
  FedBuffRunner no_retry(init, data, fleet, cfg);
  no_retry.run();
  int lost0 = 0;
  for (const auto& rec : no_retry.history()) lost0 += rec.lost_updates;
  EXPECT_LT(lost, lost0)
      << "retries must recover updates the no-retry run times out on";
}

// ---------------------------------------------------------------------------
// Deep aggregation trees (levels >= 3): verbatim bundles split down the
// interior tiers and merge back up must leave every round bitwise identical
// to the flat fabric (which is itself bitwise identical to in-process).

TEST(DeepTreeParityTest, FedAvgThreeLevelMatchesInProcessBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();

  for (std::uint64_t seed : {11ULL, 42ULL}) {
    Rng rng(3 + seed);
    Model init(tiny_model(), rng);
    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);

      FlRunConfig in_proc = base_cfg(seed);
      FedAvgRunner a(init, data, fleet, in_proc);
      a.run();

      FlRunConfig tree = base_cfg(seed);
      tree.use_fabric = true;
      tree.topology.levels = 3;
      tree.topology.shards = 4;
      tree.topology.branching = 2;
      FedAvgRunner b(init, data, fleet, tree);
      b.run();

      ASSERT_NE(b.fabric(), nullptr);
      EXPECT_EQ(b.fabric()->tree().levels(), 3);
      EXPECT_EQ(b.fabric()->tree().num_aggregators(), 4 + 2);
      EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u);
      expect_identical(a, b);
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(DeepTreeParityTest, DepthAndBranchingSweepAllMatchInProcess) {
  // 3-level and 4-level trees, branching 2/3 and the auto fan-out, plus a
  // degenerate chain (branching 1): every fault-free shape reproduces the
  // in-process run exactly.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(9);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(5);
  FedAvgRunner ref(init, data, fleet, cfg);
  ref.run();

  struct Shape {
    int levels, shards, branching;
  };
  for (const Shape& s : {Shape{3, 4, 2}, Shape{3, 6, 3}, Shape{3, 5, 0},
                         Shape{4, 8, 2}, Shape{4, 3, 1}}) {
    FlRunConfig tree = base_cfg(5);
    tree.use_fabric = true;
    tree.topology.levels = s.levels;
    tree.topology.shards = s.shards;
    tree.topology.branching = s.branching;
    FedAvgRunner b(init, data, fleet, tree);
    b.run();
    expect_identical(ref, b);
    EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u)
        << "levels=" << s.levels << " shards=" << s.shards
        << " branching=" << s.branching;
  }
}

TEST(DeepTreeParityTest, FedTransThreeLevelMatchesFlatBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();
  for (std::uint64_t seed : {13ULL, 29ULL}) {
    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);
      FedTransConfig cfg;
      cfg.rounds = 6;
      cfg.clients_per_round = 4;
      cfg.local.steps = 3;
      cfg.local.batch = 6;
      cfg.gamma = 2;
      cfg.doc_delta = 2;
      cfg.beta = 10.0;
      cfg.act_window = 2;
      cfg.max_models = 3;
      cfg.seed = seed;
      cfg.use_fabric = true;

      FedTransTrainer a(tiny_model(), data, fleet, cfg);
      cfg.topology.levels = 3;
      cfg.topology.shards = 4;
      cfg.topology.branching = 2;
      FedTransTrainer b(tiny_model(), data, fleet, cfg);
      a.run();
      b.run();

      ASSERT_EQ(a.num_models(), b.num_models());
      for (int k = 0; k < a.num_models(); ++k) {
        auto wa = a.model(k).weights();
        auto wb = b.model(k).weights();
        ASSERT_EQ(wa.size(), wb.size());
        for (std::size_t i = 0; i < wa.size(); ++i)
          EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0)
              << "model " << k << " tensor " << i;
      }
      EXPECT_EQ(a.costs().total_macs(), b.costs().total_macs());
      EXPECT_EQ(a.costs().network_bytes(), b.costs().network_bytes());
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(DeepTreeParityTest, HeteroFLThreeLevelMatchesFlatBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), /*seed=*/4);
  const int prev_threads = ThreadPool::global().size();
  for (std::uint64_t seed : {7ULL, 19ULL}) {
    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);
      BaselineConfig cfg;
      cfg.rounds = 4;
      cfg.clients_per_round = 5;
      cfg.local.steps = 3;
      cfg.local.batch = 6;
      cfg.eval_every = 2;
      cfg.eval_clients = 6;
      cfg.seed = seed;
      cfg.use_fabric = true;

      HeteroFLRunner a(tiny_model(), data, fleet, cfg);
      cfg.topology.levels = 3;
      cfg.topology.shards = 4;
      cfg.topology.branching = 2;
      HeteroFLRunner b(tiny_model(), data, fleet, cfg);
      a.run();
      b.run();

      auto wa = a.global().weights();
      auto wb = b.global().weights();
      ASSERT_EQ(wa.size(), wb.size());
      for (std::size_t i = 0; i < wa.size(); ++i)
        EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0) << "tensor " << i;
      EXPECT_EQ(a.engine().costs().network_bytes(),
                b.engine().costs().network_bytes());
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

// ---------------------------------------------------------------------------
// Numeric partial aggregation: pre-summing at the aggregators must match
// the flat reduction to numeric tolerance, keep the metric trajectory
// (losses, participants, billing) bitwise, and stay bitwise
// self-consistent across thread counts — and across shard counts when each
// leaf holds at most one update (the reduction order is then slot order
// regardless of the tree).

double max_rel_diff(const WeightSet& a, const WeightSet& b) {
  EXPECT_EQ(a.size(), b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num = std::max(num, testing::max_abs_diff(a[i], b[i]));
    for (std::int64_t j = 0; j < a[i].numel(); ++j)
      den = std::max(den, std::fabs(static_cast<double>(a[i][j])));
  }
  return num / std::max(den, 1e-12);
}

TEST(PartialAggregationTest, FedAvgNumericMatchesFlatWithinTolerance) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig flat = base_cfg(21);
  flat.rounds = 4;
  flat.clients_per_round = 6;
  flat.eval_every = 0;
  FedAvgRunner a(init, data, fleet, flat);
  a.run();

  FlRunConfig numeric = flat;
  numeric.use_fabric = true;
  numeric.topology.levels = 2;
  numeric.topology.shards = 3;
  numeric.topology.partial_aggregation = true;
  FedAvgRunner b(init, data, fleet, numeric);
  b.run();

  EXPECT_LT(max_rel_diff(a.model().weights(), b.model().weights()), 1e-5);
  // Metrics ride the tree verbatim, so participant counts and billing are
  // bitwise identical; losses track the (numerically perturbed) weights,
  // so round 0 is bitwise and later rounds tolerance-close.
  ASSERT_EQ(a.history().size(), b.history().size());
  EXPECT_EQ(a.history()[0].avg_loss, b.history()[0].avg_loss);
  for (std::size_t r = 0; r < a.history().size(); ++r) {
    EXPECT_NEAR(a.history()[r].avg_loss, b.history()[r].avg_loss,
                1e-5 * std::max(1.0, std::fabs(a.history()[r].avg_loss)));
    EXPECT_EQ(a.history()[r].participants, b.history()[r].participants);
  }
  EXPECT_EQ(a.costs().network_bytes(), b.costs().network_bytes());
  EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u);
}

TEST(PartialAggregationTest, FedTransNumericMatchesFlatWithinTolerance) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());

  FedTransConfig cfg;
  cfg.rounds = 5;
  cfg.clients_per_round = 6;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.gamma = 2;
  cfg.doc_delta = 2;
  cfg.beta = 10.0;
  cfg.act_window = 2;
  cfg.max_models = 3;
  cfg.seed = 13;

  FedTransTrainer a(tiny_model(), data, fleet, cfg);
  a.run();

  cfg.use_fabric = true;
  cfg.topology.levels = 3;
  cfg.topology.shards = 4;
  cfg.topology.branching = 2;
  cfg.topology.partial_aggregation = true;
  FedTransTrainer b(tiny_model(), data, fleet, cfg);
  b.run();

  // Per-client losses ride the tree verbatim, so utility learning sees
  // (numerically) the same inputs and the model family grows identically;
  // weights agree to numeric tolerance.
  ASSERT_EQ(a.num_models(), b.num_models());
  for (int k = 0; k < a.num_models(); ++k)
    EXPECT_LT(max_rel_diff(a.model(k).weights(), b.model(k).weights()), 1e-5)
        << "model " << k;
  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t r = 0; r < a.history().size(); ++r)
    EXPECT_NEAR(a.history()[r].avg_loss, b.history()[r].avg_loss,
                1e-5 * std::max(1.0, std::fabs(a.history()[r].avg_loss)));
}

TEST(PartialAggregationTest, HeteroFLNumericMatchesFlatWithinTolerance) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), /*seed=*/4);

  BaselineConfig cfg;
  cfg.rounds = 4;
  cfg.clients_per_round = 6;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.seed = 19;

  HeteroFLRunner a(tiny_model(), data, fleet, cfg);
  a.run();

  cfg.use_fabric = true;
  cfg.topology.levels = 2;
  cfg.topology.shards = 3;
  cfg.topology.partial_aggregation = true;
  HeteroFLRunner b(tiny_model(), data, fleet, cfg);
  b.run();

  EXPECT_LT(max_rel_diff(a.global().weights(), b.global().weights()), 1e-5);
  ASSERT_EQ(a.engine().history().size(), b.engine().history().size());
  for (std::size_t r = 0; r < a.engine().history().size(); ++r)
    EXPECT_NEAR(a.engine().history()[r].avg_loss,
                b.engine().history()[r].avg_loss,
                1e-5 * std::max(1.0, std::fabs(
                                         a.engine().history()[r].avg_loss)));
  EXPECT_EQ(a.engine().costs().network_bytes(),
            b.engine().costs().network_bytes());
}

TEST(PartialAggregationTest, BitwiseAcrossShardCountsWithSingletonLeaves) {
  // With at most one task per leaf the numeric fold order is slot order
  // whatever the shard count, so 2-level trees of 4, 6 and 8 leaves
  // produce bit-identical weights (and repeated runs replay exactly).
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(7);
  Model init(tiny_model(), rng);

  auto run_with_shards = [&](int shards) {
    FlRunConfig cfg = base_cfg(33);
    cfg.rounds = 3;
    cfg.clients_per_round = 4;
    cfg.eval_every = 0;
    cfg.use_fabric = true;
    cfg.topology.levels = 2;
    cfg.topology.shards = shards;
    cfg.topology.partial_aggregation = true;
    FedAvgRunner r(init, data, fleet, cfg);
    r.run();
    return r.model().weights();
  };

  const WeightSet w4 = run_with_shards(4);
  for (int shards : {4, 6, 8}) {
    const WeightSet w = run_with_shards(shards);
    ASSERT_EQ(w4.size(), w.size());
    for (std::size_t i = 0; i < w4.size(); ++i)
      EXPECT_EQ(testing::max_abs_diff(w4[i], w[i]), 0.0)
          << "shards=" << shards << " tensor " << i;
  }
}

TEST(PartialAggregationTest, NumericModeDeterministicAcrossThreadCounts) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(5);
  Model init(tiny_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  FlRunConfig cfg = base_cfg(17);
  cfg.rounds = 3;
  cfg.clients_per_round = 6;
  cfg.eval_every = 0;
  cfg.use_fabric = true;
  cfg.topology.levels = 3;
  cfg.topology.shards = 4;
  cfg.topology.branching = 2;
  cfg.topology.partial_aggregation = true;

  ThreadPool::set_global_threads(1);
  FedAvgRunner a(init, data, fleet, cfg);
  a.run();
  ThreadPool::set_global_threads(4);
  FedAvgRunner b(init, data, fleet, cfg);
  b.run();
  ThreadPool::set_global_threads(prev_threads);
  expect_identical(a, b);
}

TEST(PartialAggregationTest, UnsupportedStrategyFailsLoudly) {
  // Per-client uplink compression rewrites each delta before accumulation,
  // so the reduction is no longer a plain weighted linear sum; configuring
  // partial_aggregation on such a session must throw at engine construction
  // — before any round runs — not silently fall back to verbatim bundles.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(3);
  cfg.use_fabric = true;
  cfg.topology.levels = 2;
  cfg.topology.shards = 2;
  cfg.topology.partial_aggregation = true;
  cfg.compression = CompressionKind::TopK;  // per-client: can't pre-sum
  EXPECT_THROW(FedAvgRunner(init, data, fleet, cfg), Error);
}

// ---------------------------------------------------------------------------
// Per-shard fault domains: a leaf dead for the round has its partition
// redirected to an alive sibling — rounds complete, the failover is billed
// and recorded, and runs stay deterministic.

TEST(LeafFailoverTest, DeadLeafPartitionFailsOverToSibling) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(7);
  cfg.rounds = 6;
  cfg.clients_per_round = 6;
  cfg.eval_every = 0;
  cfg.use_fabric = true;
  cfg.topology.levels = 2;
  cfg.topology.shards = 3;
  cfg.fabric_faults.leaf_death_prob = 0.35;
  cfg.fabric_faults.seed = 99;

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();

  ASSERT_EQ(runner.history().size(), 6u);
  int participants = 0, lost = 0, failovers = 0;
  for (const auto& rec : runner.history()) {
    participants += rec.participants;
    lost += rec.lost_updates;
    failovers += rec.leaf_failovers;
    // Conservation: every planned task is accounted for.
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round);
  }
  const FabricStats& stats = runner.fabric()->stats();
  EXPECT_GT(stats.leaf_failovers.load(), 0u)
      << "a 35% leaf death rate over 6 rounds x 3 leaves must kill one";
  EXPECT_EQ(static_cast<std::uint64_t>(failovers),
            stats.leaf_failovers.load())
      << "per-round records must reconcile with the transport counter";
  // Siblings cover every death unless all three leaves die at once, so
  // nearly every update survives; the redirected bundles are billed.
  EXPECT_GT(participants, 0);
  const double model_bytes =
      static_cast<double>(runner.model().param_bytes());
  const double failover_bytes =
      static_cast<double>(stats.failover_bytes_down.load());
  EXPECT_GT(failover_bytes, 0.0);
  EXPECT_NEAR(runner.costs().network_bytes(),
              model_bytes * (2.0 * participants + lost) + failover_bytes,
              1.0);

  // Determinism: the same chaotic run replays bit-identically.
  FedAvgRunner again(init, data, fleet, cfg);
  again.run();
  expect_identical(runner, again);
}

TEST(LeafFailoverTest, DeepTreeFailoverStaysWithinFaultDomain) {
  // 3-level tree, sibling groups of 2: deaths fail over to the one
  // sibling under the same parent; rounds terminate and conserve tasks
  // across thread counts.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  FlRunConfig cfg = base_cfg(7);
  cfg.rounds = 5;
  cfg.clients_per_round = 6;
  cfg.eval_every = 0;
  cfg.use_fabric = true;
  cfg.topology.levels = 3;
  cfg.topology.shards = 4;
  cfg.topology.branching = 2;
  cfg.fabric_faults.leaf_death_prob = 0.4;
  cfg.fabric_faults.seed = 1234;

  ThreadPool::set_global_threads(1);
  FedAvgRunner a(init, data, fleet, cfg);
  a.run();
  ThreadPool::set_global_threads(4);
  FedAvgRunner b(init, data, fleet, cfg);
  b.run();
  ThreadPool::set_global_threads(prev_threads);

  expect_identical(a, b);
  int lost = 0;
  for (const auto& rec : a.history()) {
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round);
    lost += rec.lost_updates;
  }
  // A 40% death rate must trigger failovers (one sibling dead) and/or
  // whole-domain losses (both siblings dead) across 5 rounds x 4 leaves.
  EXPECT_GT(a.fabric()->stats().leaf_failovers.load() +
                static_cast<std::uint64_t>(lost),
            0u);
}

// ---------------------------------------------------------------------------
// Async over the tree: FedBuff round trips hop through the leaf partition
// on the zero-latency backbone, so fault-free tree sessions are bitwise
// identical to flat ones — delivery order at the root is preserved.

TEST(AsyncTreeTest, FaultFreeTreeAsyncMatchesFlatBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(8);
  Model init(tiny_model(), rng);

  AsyncRunConfig cfg;
  cfg.concurrency = 3;
  cfg.buffer_size = 2;
  cfg.aggregations = 6;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.seed = 42;
  cfg.use_fabric = true;

  FedBuffRunner flat(init, data, fleet, cfg);
  flat.run();

  for (int levels : {2, 3}) {
    AsyncRunConfig tree_cfg = cfg;
    tree_cfg.topology.levels = levels;
    tree_cfg.topology.shards = 3;
    tree_cfg.topology.branching = 2;
    FedBuffRunner tree(init, data, fleet, tree_cfg);
    tree.run();

    EXPECT_EQ(flat.now_s(), tree.now_s()) << "levels=" << levels;
    auto wa = flat.model().weights();
    auto wb = tree.model().weights();
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i)
      EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0)
          << "levels=" << levels << " tensor " << i;
    ASSERT_EQ(flat.history().size(), tree.history().size());
    for (std::size_t r = 0; r < flat.history().size(); ++r) {
      EXPECT_EQ(flat.history()[r].avg_loss, tree.history()[r].avg_loss);
      EXPECT_EQ(flat.history()[r].round_time_s,
                tree.history()[r].round_time_s);
    }
    // The tree moved more backbone frames for the same outcome.
    EXPECT_GT(tree.engine().fabric()->stats().frames_sent.load(),
              flat.engine().fabric()->stats().frames_sent.load());
    EXPECT_EQ(tree.engine().fabric()->stats().frames_rejected.load(), 0u);
  }
}

TEST(AsyncTreeTest, FaultyTreeAsyncTerminatesAndAccountsLosses) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(8);
  Model init(tiny_model(), rng);

  AsyncRunConfig cfg;
  cfg.concurrency = 4;
  cfg.buffer_size = 2;
  cfg.aggregations = 6;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.seed = 7;
  cfg.use_fabric = true;
  cfg.fabric_faults.drop_prob = 0.2;
  cfg.fabric_faults.dropout_prob = 0.1;
  cfg.fabric_faults.leaf_death_prob = 0.15;
  cfg.fabric_faults.seed = 55;
  cfg.topology.levels = 3;
  cfg.topology.shards = 4;
  cfg.topology.branching = 2;
  cfg.topology.max_retries = 1;
  cfg.topology.ack_timeout_s = 30.0;

  FedBuffRunner runner(init, data, fleet, cfg);
  runner.run();  // must terminate: timeouts replace lost clients

  EXPECT_EQ(runner.aggregations_done(), cfg.aggregations);
  int lost = 0, failovers = 0;
  for (const auto& rec : runner.history()) {
    lost += rec.lost_updates;
    failovers += rec.leaf_failovers;
  }
  EXPECT_GT(lost, 0) << "fault injection over tree hops must lose updates";
  // Failed-over jobs are recorded per shipped version, reconciling with
  // the transport counter up to the residual after the last ship.
  EXPECT_LE(static_cast<std::uint64_t>(failovers),
            runner.engine().fabric()->stats().leaf_failovers.load());
  EXPECT_GT(runner.engine().fabric()->stats().leaf_failovers.load(), 0u)
      << "a 15% leaf death rate over the session must reroute some jobs";
  EXPECT_EQ(runner.engine().fabric()->stats().frames_rejected.load(), 0u);

  // Deterministic replay.
  FedBuffRunner again(init, data, fleet, cfg);
  again.run();
  EXPECT_EQ(runner.now_s(), again.now_s());
  ASSERT_EQ(runner.history().size(), again.history().size());
  for (std::size_t r = 0; r < runner.history().size(); ++r)
    EXPECT_EQ(runner.history()[r].avg_loss, again.history()[r].avg_loss);
}

// ---------------------------------------------------------------------------
// Wire v6 bandwidth reducers: (a) quantized tree partials stay within 1e-3
// relative of the exact numeric tree and bitwise-deterministic across
// thread counts; (b) broadcast-cache rounds are bitwise identical to cold
// rounds (Sim and Socket) with the savings visible in FabricStats; (c)
// delta downlinks reconstruct bitwise-identical weights and never cost
// extra bytes; repeat broadcasts genuinely hit both machineries.

TEST(BandwidthTest, QuantizedFedAvgTreeMatchesExactNumericWithinTolerance) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig exact = base_cfg(21);
  exact.rounds = 4;
  exact.clients_per_round = 6;
  exact.eval_every = 0;
  exact.use_fabric = true;
  exact.topology.levels = 3;
  exact.topology.shards = 4;
  exact.topology.branching = 2;
  exact.topology.partial_aggregation = true;
  FedAvgRunner a(init, data, fleet, exact);
  a.run();

  for (PartialQuant q : {PartialQuant::Int8, PartialQuant::Fp16}) {
    FlRunConfig quant = exact;
    quant.topology.quantize_partials = q;
    FedAvgRunner b(init, data, fleet, quant);
    b.run();
    EXPECT_LT(max_rel_diff(a.model().weights(), b.model().weights()), 1e-3)
        << "quant mode " << static_cast<int>(q);
    // Metrics ride the tree verbatim either way.
    ASSERT_EQ(a.history().size(), b.history().size());
    for (std::size_t r = 0; r < a.history().size(); ++r)
      EXPECT_EQ(a.history()[r].participants, b.history()[r].participants);
    EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u);
    // Quantized group sums shrink what the root actually received.
    EXPECT_LT(b.fabric()->stats().bytes_root_in.load(),
              a.fabric()->stats().bytes_root_in.load());
  }
}

TEST(BandwidthTest, QuantizedHeteroFLTreeMatchesExactNumericWithinTolerance) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), /*seed=*/4);

  BaselineConfig cfg;
  cfg.rounds = 4;
  cfg.clients_per_round = 6;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.seed = 19;
  cfg.use_fabric = true;
  cfg.topology.levels = 2;
  cfg.topology.shards = 3;
  cfg.topology.partial_aggregation = true;

  HeteroFLRunner a(tiny_model(), data, fleet, cfg);
  a.run();

  cfg.topology.quantize_partials = PartialQuant::Int8;
  HeteroFLRunner b(tiny_model(), data, fleet, cfg);
  b.run();

  EXPECT_LT(max_rel_diff(a.global().weights(), b.global().weights()), 1e-3);
  EXPECT_EQ(b.engine().fabric()->stats().frames_rejected.load(), 0u);
}

TEST(BandwidthTest, QuantizedFedTransTreeMatchesExactNumericWithinTolerance) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());

  FedTransConfig cfg;
  cfg.rounds = 5;
  cfg.clients_per_round = 6;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.gamma = 2;
  cfg.doc_delta = 2;
  cfg.beta = 10.0;
  cfg.act_window = 2;
  cfg.max_models = 3;
  cfg.seed = 13;
  cfg.use_fabric = true;
  cfg.topology.levels = 3;
  cfg.topology.shards = 4;
  cfg.topology.branching = 2;
  cfg.topology.partial_aggregation = true;

  FedTransTrainer a(tiny_model(), data, fleet, cfg);
  a.run();

  cfg.topology.quantize_partials = PartialQuant::Fp16;
  FedTransTrainer b(tiny_model(), data, fleet, cfg);
  b.run();

  // Utility learning consumes the verbatim per-client losses; fp16 group
  // sums keep the weight drift small enough that the family trajectory is
  // preserved on this fixture.
  ASSERT_EQ(a.num_models(), b.num_models());
  for (int k = 0; k < a.num_models(); ++k)
    EXPECT_LT(max_rel_diff(a.model(k).weights(), b.model(k).weights()), 1e-3)
        << "model " << k;
}

TEST(BandwidthTest, QuantizedModeDeterministicAcrossThreadCounts) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(5);
  Model init(tiny_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  FlRunConfig cfg = base_cfg(17);
  cfg.rounds = 3;
  cfg.clients_per_round = 6;
  cfg.eval_every = 0;
  cfg.use_fabric = true;
  cfg.topology.levels = 3;
  cfg.topology.shards = 4;
  cfg.topology.branching = 2;
  cfg.topology.partial_aggregation = true;
  cfg.topology.quantize_partials = PartialQuant::Int8;

  ThreadPool::set_global_threads(1);
  FedAvgRunner a(init, data, fleet, cfg);
  a.run();
  ThreadPool::set_global_threads(4);
  FedAvgRunner b(init, data, fleet, cfg);
  b.run();
  ThreadPool::set_global_threads(prev_threads);
  expect_identical(a, b);
}

TEST(BandwidthTest, QuantizedPartialsRequireNumericMode) {
  // Verbatim bundles must stay bit-exact, so quantization without
  // partial_aggregation is a configuration error caught at construction.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(3);
  cfg.use_fabric = true;
  cfg.topology.levels = 2;
  cfg.topology.shards = 2;
  cfg.topology.quantize_partials = PartialQuant::Int8;
  EXPECT_THROW(FedAvgRunner(init, data, fleet, cfg), Error);
}

TEST(BandwidthTest, BroadcastCacheRoundsMatchColdRoundsBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();

  for (std::uint64_t seed : {11ULL, 42ULL}) {
    Rng rng(3 + seed);
    Model init(tiny_model(), rng);
    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);

      FlRunConfig cold = base_cfg(seed);
      cold.use_fabric = true;
      cold.topology.levels = 3;
      cold.topology.shards = 4;
      cold.topology.branching = 2;
      FedAvgRunner a(init, data, fleet, cold);
      a.run();

      FlRunConfig cached = cold;
      cached.topology.broadcast_cache = true;
      FedAvgRunner b(init, data, fleet, cached);
      b.run();

      // Bitwise including costs: elision only trims the zero-latency
      // backbone, never the billed client links.
      expect_identical(a, b);
      EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u);
      EXPECT_LE(b.fabric()->stats().bytes_sent.load(),
                a.fabric()->stats().bytes_sent.load());
    }
  }
  ThreadPool::set_global_threads(prev_threads);

  // Socket leg: the elided frames survive stream reassembly too.
  Rng rng(3 + 11);
  Model init(tiny_model(), rng);
  FlRunConfig cold = base_cfg(11);
  cold.use_fabric = true;
  cold.topology.levels = 2;
  cold.topology.shards = 3;
  cold.with_socket_transport();
  FedAvgRunner a(init, data, fleet, cold);
  a.run();
  FlRunConfig cached = cold;
  cached.topology.broadcast_cache = true;
  FedAvgRunner b(init, data, fleet, cached);
  b.run();
  expect_identical(a, b);
  EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u);
}

TEST(BandwidthTest, DeltaDownlinkKeepsResultsBitwiseIdentical) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();

  for (std::uint64_t seed : {11ULL, 42ULL}) {
    Rng rng(3 + seed);
    Model init(tiny_model(), rng);
    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);

      FlRunConfig full = base_cfg(seed);
      full.use_fabric = true;
      full.topology.levels = 2;
      full.topology.shards = 3;
      FedAvgRunner a(init, data, fleet, full);
      a.run();

      FlRunConfig delta = full;
      delta.topology.delta_downlink = true;
      FedAvgRunner b(init, data, fleet, delta);
      b.run();

      // Clients reconstruct the exact weights, so the whole trajectory is
      // bitwise; any shipped delta can only shrink the bill.
      auto wa = a.model().weights();
      auto wb = b.model().weights();
      ASSERT_EQ(wa.size(), wb.size());
      for (std::size_t i = 0; i < wa.size(); ++i)
        EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0) << "tensor " << i;
      ASSERT_EQ(a.history().size(), b.history().size());
      for (std::size_t r = 0; r < a.history().size(); ++r) {
        EXPECT_EQ(a.history()[r].avg_loss, b.history()[r].avg_loss);
        EXPECT_EQ(a.history()[r].participants, b.history()[r].participants);
      }
      EXPECT_LE(b.costs().network_bytes(), a.costs().network_bytes());
      EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u);
    }
  }
  ThreadPool::set_global_threads(prev_threads);

  // Socket leg, flat topology (delta applies to every sync downlink path).
  Rng rng(3 + 42);
  Model init(tiny_model(), rng);
  FlRunConfig full = base_cfg(42);
  full.use_fabric = true;
  full.with_socket_transport();
  FedAvgRunner a(init, data, fleet, full);
  a.run();
  FlRunConfig delta = full;
  delta.topology.delta_downlink = true;
  FedAvgRunner b(init, data, fleet, delta);
  b.run();
  auto wa = a.model().weights();
  auto wb = b.model().weights();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0) << "tensor " << i;
  EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u);
}

TEST(BandwidthTest, RepeatBroadcastsHitTheCacheAndShipDeltas) {
  // Drive the server directly with a frozen global: round 2+ re-ships the
  // same bodies, so every tree edge elides against its cache and every
  // client's ModelDown collapses to an all-Same delta — while a
  // feature-off server produces bitwise identical training results.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model proto(tiny_model(), rng);

  LocalTrainConfig local;
  local.steps = 3;
  local.batch = 6;

  FabricTopology on_topo;
  on_topo.levels = 3;
  on_topo.shards = 4;
  on_topo.branching = 2;
  on_topo.broadcast_cache = true;
  on_topo.delta_downlink = true;
  FederationServer on(proto, data, fleet, local, FaultConfig{}, on_topo);

  FabricTopology off_topo = on_topo;
  off_topo.broadcast_cache = false;
  off_topo.delta_downlink = false;
  FederationServer off(proto, data, fleet, local, FaultConfig{}, off_topo);

  const WeightSet global = proto.weights();
  const std::vector<int> clients = {0, 1, 2, 3, 4, 5};
  for (std::uint32_t round = 1; round <= 3; ++round) {
    Rng fork_root(100 + round);
    std::vector<Rng> rngs;
    for (std::size_t i = 0; i < clients.size(); ++i)
      rngs.push_back(fork_root.fork());

    const ExchangeResult ea = on.run_round(round, global, clients, rngs);
    const ExchangeResult eb = off.run_round(round, global, clients, rngs);
    ASSERT_EQ(ea.outcomes.size(), eb.outcomes.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      EXPECT_EQ(ea.outcomes[i], eb.outcomes[i]) << "round " << round;
      ASSERT_EQ(ea.results[i].delta.size(), eb.results[i].delta.size());
      for (std::size_t t = 0; t < ea.results[i].delta.size(); ++t)
        EXPECT_EQ(testing::max_abs_diff(ea.results[i].delta[t],
                                        eb.results[i].delta[t]),
                  0.0)
            << "round " << round << " slot " << i << " tensor " << t;
    }
    if (round == 1) {
      EXPECT_EQ(on.stats().cache_hits.load(), 0u) << "cold round";
      EXPECT_EQ(on.stats().delta_downlinks.load(), 0u) << "no base yet";
    }
  }

  // Warm rounds elided on every edge and shipped per-client deltas.
  EXPECT_GT(on.stats().cache_hits.load(), 0u);
  EXPECT_GT(on.stats().cache_saved_bytes.load(), 0u);
  EXPECT_GT(on.stats().delta_downlinks.load(), 0u);
  EXPECT_GT(on.stats().delta_saved_bytes.load(), 0u);
  EXPECT_EQ(off.stats().cache_hits.load(), 0u);
  EXPECT_EQ(off.stats().delta_downlinks.load(), 0u);
  EXPECT_EQ(on.stats().frames_rejected.load(), 0u);
  EXPECT_EQ(off.stats().frames_rejected.load(), 0u);

  // The byte ledger reconciles: the feature-on fabric moved exactly the
  // advertised savings less than the feature-off one.
  EXPECT_EQ(on.stats().bytes_sent.load() + on.stats().cache_saved_bytes.load() +
                on.stats().delta_saved_bytes.load(),
            off.stats().bytes_sent.load());
  EXPECT_LT(on.stats().bytes_downlink.load(),
            off.stats().bytes_downlink.load());
}

}  // namespace
}  // namespace fedtrans
