// Federation-fabric tests: (1) a fault-free fabric run — wire protocol +
// simulated transport + multithreaded FederationServer — is bitwise
// identical to the direct in-process FedAvg path, across seeds and thread
// counts; (2) under message loss and client dropout, rounds still terminate
// and every lost update is accounted in CostMeter/RoundRecord; (3) the
// simulated transport's fault injection is deterministic and its byte
// accounting is exact.

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "fl/runner.hpp"
#include "net/server.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

DatasetConfig tiny_data(int clients = 12) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 16;
  cfg.min_train_samples = 10;
  cfg.eval_samples = 8;
  cfg.noise = 0.35;
  cfg.seed = 17;
  return cfg;
}

std::vector<DeviceProfile> tiny_fleet(int n, std::uint64_t seed = 9) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.seed = seed;
  cfg.with_median_capacity(5e6);
  return sample_fleet(cfg);
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

FlRunConfig base_cfg(std::uint64_t seed) {
  FlRunConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 4;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.eval_every = 2;
  cfg.eval_clients = 6;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(FedAvgRunner& a, FedAvgRunner& b) {
  auto wa = a.model().weights();
  auto wb = b.model().weights();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0) << "tensor " << i;

  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t r = 0; r < a.history().size(); ++r) {
    const auto& ra = a.history()[r];
    const auto& rb = b.history()[r];
    EXPECT_EQ(ra.round, rb.round);
    EXPECT_EQ(ra.avg_loss, rb.avg_loss) << "round " << r;
    EXPECT_EQ(ra.cum_macs, rb.cum_macs) << "round " << r;
    EXPECT_EQ(ra.round_time_s, rb.round_time_s) << "round " << r;
    EXPECT_EQ(ra.accuracy, rb.accuracy) << "round " << r;
    EXPECT_EQ(ra.participants, rb.participants) << "round " << r;
    EXPECT_EQ(ra.lost_updates, rb.lost_updates) << "round " << r;
  }
  EXPECT_EQ(a.costs().total_macs(), b.costs().total_macs());
  EXPECT_EQ(a.costs().network_bytes(), b.costs().network_bytes());
}

TEST(FabricParityTest, FaultFreeFabricMatchesInProcessBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();

  for (std::uint64_t seed : {11ULL, 42ULL}) {
    Rng rng(3 + seed);
    Model init(tiny_model(), rng);

    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);

      FlRunConfig in_proc = base_cfg(seed);
      FedAvgRunner a(init, data, fleet, in_proc);
      a.run();

      FlRunConfig on_fabric = base_cfg(seed);
      on_fabric.use_fabric = true;
      FedAvgRunner b(init, data, fleet, on_fabric);
      b.run();

      ASSERT_NE(b.fabric(), nullptr);
      EXPECT_EQ(b.fabric()->phase(), FederationServer::Phase::Aggregate)
          << "round state machine should rest in its final phase";
      EXPECT_EQ(b.fabric()->stats().frames_dropped.load(), 0u);
      EXPECT_EQ(b.fabric()->stats().frames_rejected.load(), 0u)
          << "undecodable frames on a clean transport mean a codec bug";
      expect_identical(a, b);
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(FabricParityTest, FabricWithStragglerPolicyMatchesInProcess) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), /*seed=*/4);
  Rng rng(5);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(21);
  cfg.overcommit = 0.5;
  cfg.deadline_quantile = 0.7;  // deadline-trim the straggler tail
  FedAvgRunner a(init, data, fleet, cfg);
  a.run();

  FlRunConfig fab = cfg;
  fab.use_fabric = true;
  FedAvgRunner b(init, data, fleet, fab);
  b.run();
  expect_identical(a, b);
  // With over-selection some rounds must actually drop stragglers.
  int lost = 0;
  for (const auto& rec : b.history()) lost += rec.lost_updates;
  EXPECT_GT(lost, 0);
}

TEST(FabricFaultTest, RoundsTerminateAndLossesAreAccounted) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig cfg = base_cfg(7);
  cfg.rounds = 5;
  cfg.clients_per_round = 5;
  cfg.eval_every = 0;
  cfg.overcommit = 0.4;
  cfg.deadline_quantile = 0.8;
  cfg.use_fabric = true;
  cfg.fabric_faults.drop_prob = 0.25;
  cfg.fabric_faults.dup_prob = 0.15;
  cfg.fabric_faults.reorder_prob = 0.2;
  cfg.fabric_faults.dropout_prob = 0.25;
  cfg.fabric_faults.seed = 1234;

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();  // must terminate despite lost invitations/models/updates

  ASSERT_EQ(runner.history().size(), static_cast<std::size_t>(cfg.rounds));
  int participants = 0, lost = 0;
  for (const auto& rec : runner.history()) {
    EXPECT_GE(rec.participants, 0);
    EXPECT_GE(rec.lost_updates, 0);
    participants += rec.participants;
    lost += rec.lost_updates;
  }
  EXPECT_GT(participants, 0) << "some updates must still get through";
  EXPECT_GT(lost, 0) << "heavy fault injection must lose some updates";

  // CostMeter consistency with the per-round records: each aggregated
  // update moved the model down and up (2 × model bytes, no compression);
  // each lost update still burned its downlink.
  const double model_bytes =
      static_cast<double>(runner.model().param_bytes());
  EXPECT_NEAR(runner.costs().network_bytes(),
              model_bytes * (2.0 * participants + lost), 1.0);

  // Fault machinery actually fired.
  ASSERT_NE(runner.fabric(), nullptr);
  const FabricStats& stats = runner.fabric()->stats();
  EXPECT_GT(stats.frames_dropped.load(), 0u);
  EXPECT_GT(stats.frames_duplicated.load(), 0u);
  EXPECT_GT(stats.frames_reordered.load(), 0u);
  EXPECT_GT(stats.client_dropouts.load(), 0u);
  EXPECT_GT(stats.frames_sent.load(), stats.frames_dropped.load());
  // Fault injection drops/duplicates/reorders whole frames — it never
  // corrupts bytes, so nothing should have failed to decode.
  EXPECT_EQ(stats.frames_rejected.load(), 0u);
}

TEST(FabricFaultTest, FaultRunsAreDeterministicAcrossThreadCounts) {
  auto data = FederatedDataset::generate(tiny_data(8));
  auto fleet = tiny_fleet(8);
  Rng rng(2);
  Model init(tiny_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  FlRunConfig cfg = base_cfg(13);
  cfg.eval_every = 0;
  cfg.use_fabric = true;
  cfg.fabric_faults.drop_prob = 0.3;
  cfg.fabric_faults.dropout_prob = 0.2;

  ThreadPool::set_global_threads(1);
  FedAvgRunner a(init, data, fleet, cfg);
  a.run();
  ThreadPool::set_global_threads(4);
  FedAvgRunner b(init, data, fleet, cfg);
  b.run();
  ThreadPool::set_global_threads(prev_threads);

  expect_identical(a, b);
  EXPECT_EQ(a.fabric()->stats().frames_dropped.load(),
            b.fabric()->stats().frames_dropped.load());
}

TEST(SimTransportTest, DeterministicFaultsAndExactByteAccounting) {
  auto fleet = tiny_fleet(4);
  FaultConfig faults;
  faults.drop_prob = 0.5;
  faults.seed = 77;

  auto run_once = [&] {
    SimTransport net(fleet, faults);
    std::vector<bool> delivered;
    for (int i = 0; i < 32; ++i)
      delivered.push_back(net.send(kServerId, i % 4,
                                   std::string("payload-") +
                                       std::to_string(i)));
    return std::make_pair(delivered, net.stats().bytes_delivered.load());
  };
  auto [d1, bytes1] = run_once();
  auto [d2, bytes2] = run_once();
  EXPECT_EQ(d1, d2) << "fault draws must be schedule-independent";
  EXPECT_EQ(bytes1, bytes2);

  // Delivered frames arrive in (deliver_at, seq) order per mailbox and
  // byte counters match exactly what was enqueued.
  SimTransport net(fleet, FaultConfig{});
  EXPECT_TRUE(net.send(kServerId, 1, "aaaa"));
  EXPECT_TRUE(net.send(kServerId, 1, "bb"));
  EXPECT_TRUE(net.send(1, kServerId, "cc", /*sent_at_s=*/2.0));
  auto inbox = net.drain(1);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_LE(inbox[0].deliver_at_s, inbox[1].deliver_at_s);
  EXPECT_EQ(net.stats().bytes_sent.load(), 8u);
  EXPECT_EQ(net.stats().bytes_delivered.load(), 8u);
  auto server_box = net.drain(kServerId);
  ASSERT_EQ(server_box.size(), 1u);
  EXPECT_GT(server_box[0].deliver_at_s, 2.0);
  EXPECT_FALSE(net.try_recv(kServerId).has_value());
}

TEST(SimTransportTest, ReorderingDelaysDeliveryTimestamps) {
  auto fleet = tiny_fleet(2);
  SimTransport clean(fleet, FaultConfig{});
  FaultConfig faults;
  faults.reorder_prob = 1.0;
  SimTransport shuffled(fleet, faults);
  ASSERT_TRUE(clean.send(kServerId, 0, "0123456789abcdef"));
  ASSERT_TRUE(shuffled.send(kServerId, 0, "0123456789abcdef"));
  auto a = clean.drain(0);
  auto b = shuffled.drain(0);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  // A reordered frame lands one extra link transfer later in simulated
  // time — twice the clean latency for a single frame.
  EXPECT_DOUBLE_EQ(b[0].deliver_at_s, 2.0 * a[0].deliver_at_s);
  EXPECT_EQ(shuffled.stats().frames_reordered.load(), 1u);
}

TEST(SimTransportTest, DuplicatesAreDeliveredTwiceAndDeduplicatedUpstream) {
  auto fleet = tiny_fleet(2);
  FaultConfig faults;
  faults.dup_prob = 1.0;
  SimTransport net(fleet, faults);
  EXPECT_TRUE(net.send(kServerId, 0, "hello"));
  auto inbox = net.drain(0);
  EXPECT_EQ(inbox.size(), 2u);
  EXPECT_EQ(net.stats().frames_duplicated.load(), 1u);
}

}  // namespace
}  // namespace fedtrans
