#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "fl/runner.hpp"
#include "model/transform.hpp"

namespace fedtrans {
namespace {

// Failure injection / degenerate-input behaviour: the library must fail
// loudly on contract violations and keep running on survivable weirdness.

TEST(FailureModes, TrainerRejectsFleetSizeMismatch) {
  DatasetConfig dcfg;
  dcfg.num_clients = 5;
  dcfg.num_classes = 3;
  dcfg.hw = 8;
  auto data = FederatedDataset::generate(dcfg);
  std::vector<DeviceProfile> fleet(3);  // wrong size
  FedTransConfig cfg;
  EXPECT_THROW(
      FedTransTrainer(ModelSpec::conv(1, 8, 3, 4, {6}), data, fleet, cfg),
      Error);
}

TEST(FailureModes, SingleClientFleetStillRuns) {
  DatasetConfig dcfg;
  dcfg.num_clients = 1;
  dcfg.num_classes = 3;
  dcfg.hw = 8;
  dcfg.mean_train_samples = 16;
  auto data = FederatedDataset::generate(dcfg);
  std::vector<DeviceProfile> fleet(1);
  fleet[0].capacity_macs = 1e9;
  FedTransConfig cfg;
  cfg.rounds = 4;
  cfg.clients_per_round = 3;  // more than exist: clamped
  cfg.local.steps = 3;
  FedTransTrainer trainer(ModelSpec::conv(1, 8, 3, 4, {6}), data, fleet, cfg);
  EXPECT_NO_THROW(trainer.run());
  auto ev = trainer.evaluate_final();
  EXPECT_EQ(ev.client_accuracy.size(), 1u);
}

TEST(FailureModes, AllClientsIncompatibleFallBackToInitialModel) {
  DatasetConfig dcfg;
  dcfg.num_clients = 6;
  dcfg.num_classes = 3;
  dcfg.hw = 8;
  auto data = FederatedDataset::generate(dcfg);
  std::vector<DeviceProfile> fleet(6);
  for (auto& d : fleet) {
    d.capacity_macs = 1.0;  // nothing fits
    d.compute_macs_per_s = 1e6;
    d.bandwidth_bytes_per_s = 1e4;
  }
  FedTransConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 3;
  cfg.local.steps = 2;
  FedTransTrainer trainer(ModelSpec::conv(1, 8, 3, 4, {6}), data, fleet, cfg);
  EXPECT_NO_THROW(trainer.run());
  auto ev = trainer.evaluate_final();
  for (int m : ev.client_model) EXPECT_EQ(m, 0);
}

TEST(FailureModes, ZeroVarianceLossesAreSafe) {
  // standardize() of identical losses returns zeros — utilities unchanged.
  std::vector<double> losses{1.5, 1.5, 1.5};
  const auto z = standardize(losses);
  for (double v : z) EXPECT_EQ(v, 0.0);
}

TEST(FailureModes, DegenerateDatasetMinimums) {
  DatasetConfig dcfg;
  dcfg.num_clients = 2;
  dcfg.num_classes = 2;
  dcfg.hw = 4;               // smallest sane resolution
  dcfg.min_train_samples = 1;
  dcfg.mean_train_samples = 1;
  dcfg.eval_samples = 1;
  auto data = FederatedDataset::generate(dcfg);
  EXPECT_GE(data.client(0).train_size(), 1);
  EXPECT_EQ(data.client(0).eval_size(), 1);
}

TEST(FailureModes, TransformOnSingleCellModel) {
  Rng rng(5);
  Model parent(ModelSpec::conv(1, 8, 3, 4, {6}), rng);
  // Both operations must work when there is only one cell.
  EXPECT_NO_THROW(widen_cell(parent, 0, 2.0, 1, rng));
  EXPECT_NO_THROW(deepen_cell(parent, 0, 1, 2, rng));
}

TEST(FailureModes, RepeatedTransformationsStayFunctionPreserving) {
  // Chain 4 transformations; the composite must still match the original.
  Rng rng(6);
  Model m0(ModelSpec::conv(1, 8, 3, 4, {6, 8}), rng);
  Tensor x({2, 1, 8, 8});
  x.randn(rng);
  Tensor y0 = m0.forward(x, false);

  Model m1 = widen_cell(m0, 0, 1.5, 1, rng);
  Model m2 = deepen_cell(m1, 1, 1, 2, rng);
  Model m3 = widen_cell(m2, 2, 2.0, 3, rng);
  Model m4 = deepen_cell(m3, 0, 2, 4, rng);
  Tensor y4 = m4.forward(x, false);
  for (std::int64_t i = 0; i < y0.numel(); ++i)
    EXPECT_NEAR(y0[i], y4[i], 2e-3) << "chained transforms diverged at " << i;
}

TEST(FailureModes, RunnerWithZeroRoundsIsNoOp) {
  DatasetConfig dcfg;
  dcfg.num_clients = 4;
  dcfg.num_classes = 3;
  dcfg.hw = 8;
  auto data = FederatedDataset::generate(dcfg);
  std::vector<DeviceProfile> fleet(4);
  for (auto& d : fleet) d.capacity_macs = 1e9;
  Rng rng(7);
  FlRunConfig cfg;
  cfg.rounds = 0;
  FedAvgRunner runner(Model(ModelSpec::conv(1, 8, 3, 4, {6}), rng), data,
                      fleet, cfg);
  runner.run();
  EXPECT_EQ(runner.history().size(), 0u);
  EXPECT_EQ(runner.costs().total_macs(), 0.0);
}

}  // namespace
}  // namespace fedtrans
