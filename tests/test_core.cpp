#include <gtest/gtest.h>

#include <cmath>
#include "common/check.hpp"
#include "core/aggregator.hpp"
#include "core/client_manager.hpp"
#include "core/signals.hpp"
#include "core/transformer.hpp"
#include "model/similarity.hpp"
#include "model/transform.hpp"

namespace fedtrans {
namespace {

// ---------------------------------------------------------------- DoC ---

TEST(DoC, NotReadyUntilGammaPlusDeltaLosses) {
  DoCTracker doc(3, 2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(doc.ready());
    doc.add_loss(1.0);
  }
  doc.add_loss(1.0);
  EXPECT_TRUE(doc.ready());
}

TEST(DoC, LinearDecayGivesSlope) {
  // L(i) = 10 - i: every slope (L(i-δ) - L(i))/δ equals 1.
  DoCTracker doc(4, 3);
  for (int i = 0; i < 10; ++i) doc.add_loss(10.0 - i);
  EXPECT_NEAR(doc.doc(), 1.0, 1e-12);
}

TEST(DoC, FlatCurveGivesZero) {
  DoCTracker doc(3, 2);
  for (int i = 0; i < 8; ++i) doc.add_loss(2.5);
  EXPECT_NEAR(doc.doc(), 0.0, 1e-12);
}

TEST(DoC, IncreasingLossGivesNegative) {
  DoCTracker doc(3, 2);
  for (int i = 0; i < 8; ++i) doc.add_loss(1.0 + 0.5 * i);
  EXPECT_LT(doc.doc(), 0.0);
}

TEST(DoC, ResetClearsHistory) {
  DoCTracker doc(2, 1);
  for (int i = 0; i < 5; ++i) doc.add_loss(1.0);
  EXPECT_TRUE(doc.ready());
  doc.reset();
  EXPECT_FALSE(doc.ready());
  EXPECT_THROW(doc.doc(), Error);
}

// --------------------------------------------------------- Activeness ---

TEST(Activeness, NormalizedGradientNormPerCell) {
  Rng rng(1);
  Model m(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);
  // Delta = 0.1 * weights => activeness ≈ 0.1 for every cell.
  WeightSet delta;
  for (auto& p : m.params()) {
    Tensor d = *p.value;
    d.mul_(0.1f);
    delta.push_back(d);
  }
  ActivenessTracker tracker(m.num_cells(), 3);
  tracker.add_round(m, delta);
  for (double a : tracker.activeness()) EXPECT_NEAR(a, 0.1, 1e-4);
}

TEST(Activeness, WindowAverages) {
  Rng rng(2);
  Model m(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  ActivenessTracker tracker(1, 2);
  auto mk_delta = [&](float scale) {
    WeightSet d;
    for (auto& p : m.params()) {
      Tensor t = *p.value;
      t.mul_(scale);
      d.push_back(t);
    }
    return d;
  };
  tracker.add_round(m, mk_delta(0.1f));
  tracker.add_round(m, mk_delta(0.3f));
  EXPECT_NEAR(tracker.activeness()[0], 0.2, 1e-4);
  tracker.add_round(m, mk_delta(0.5f));  // window 2: (0.3+0.5)/2
  EXPECT_NEAR(tracker.activeness()[0], 0.4, 1e-4);
}

// ------------------------------------------------------- Transformer ---

TEST(Transformer, SelectsCellsAboveAlphaFraction) {
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6, 8, 10});
  Rng rng(3);
  TransformerOptions opts;
  opts.alpha = 0.9;
  auto plan = build_transform_plan(spec, {1.0, 0.95, 0.5}, opts, rng);
  EXPECT_NE(plan[0].kind, CellOp::Kind::Keep);
  EXPECT_NE(plan[1].kind, CellOp::Kind::Keep);
  EXPECT_EQ(plan[2].kind, CellOp::Kind::Keep);
}

TEST(Transformer, AlternatesWidenThenDeepen) {
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6});
  Rng rng(4);
  TransformerOptions opts;
  auto plan = build_transform_plan(spec, {1.0}, opts, rng);
  EXPECT_EQ(plan[0].kind, CellOp::Kind::Widen);
  spec.cells[0].widened_last = true;
  plan = build_transform_plan(spec, {1.0}, opts, rng);
  EXPECT_EQ(plan[0].kind, CellOp::Kind::Deepen);
}

TEST(Transformer, RandomSelectionPicksExactlyOne) {
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6, 8, 10});
  Rng rng(5);
  TransformerOptions opts;
  opts.layer_selection = false;  // '-l' ablation
  auto plan = build_transform_plan(spec, {0.0, 0.0, 0.0}, opts, rng);
  int ops = 0;
  for (const auto& op : plan)
    if (op.kind != CellOp::Kind::Keep) ++ops;
  EXPECT_EQ(ops, 1);
}

TEST(Transformer, NoSignalMeansNoOps) {
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6});
  Rng rng(6);
  auto plan = build_transform_plan(spec, {0.0}, TransformerOptions{}, rng);
  EXPECT_EQ(plan[0].kind, CellOp::Kind::Keep);
}

// ----------------------------------------------------- ClientManager ---

ClientManager make_cm(std::vector<double> caps) {
  return ClientManager(std::move(caps));
}

TEST(ClientManager, CompatibilityRespectsCapacity) {
  auto cm = make_cm({100.0, 1000.0});
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6});
  cm.add_model(spec, 80.0, -1);
  cm.add_model(spec, 500.0, 0);
  EXPECT_EQ(cm.compatible_models(0), (std::vector<int>{0}));
  EXPECT_EQ(cm.compatible_models(1), (std::vector<int>{0, 1}));
}

TEST(ClientManager, NoCompatibleFallsBackToInitialModel) {
  auto cm = make_cm({10.0});
  cm.add_model(ModelSpec::conv(1, 8, 4, 4, {6}), 80.0, -1);
  EXPECT_EQ(cm.compatible_models(0), (std::vector<int>{0}));
  Rng rng(7);
  EXPECT_EQ(cm.assign(0, rng), 0);
}

TEST(ClientManager, AssignFollowsUtilitySoftmax) {
  auto cm = make_cm({1000.0});
  Rng mrng(88);
  Model m0(ModelSpec::conv(1, 8, 4, 4, {6, 8}), mrng);
  Model m1 = widen_cell(m0, 0, 2.0, 1, mrng);  // sim(0,1) < 1
  cm.add_model(m0.spec(), 10.0, -1);
  cm.add_model(m1.spec(), 20.0, 0);
  // Strongly favor model 1: repeated good (negative std-loss) updates on it.
  for (int i = 0; i < 12; ++i) cm.update_utilities(0, 1, -1.0);
  Rng rng(8);
  int ones = 0;
  for (int i = 0; i < 300; ++i) ones += cm.assign(0, rng) == 1 ? 1 : 0;
  EXPECT_GT(ones, 200);
}

TEST(ClientManager, JointUpdateWeightsBySimilarity) {
  auto cm = make_cm({1000.0});
  Rng rng(9);
  Model m0(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);
  Model m1 = widen_cell(m0, 0, 2.0, 1, rng);
  cm.add_model(m0.spec(), 10.0, -1);
  cm.add_model(m1.spec(), 20.0, 0);
  const double sim = model_similarity(m0.spec(), m1.spec());
  cm.update_utilities(0, /*assigned=*/1, /*std_loss=*/-2.0);
  // Assigned model gets full credit (sim(1,1)=1); sibling gets sim-scaled.
  EXPECT_NEAR(cm.utility(0, 1), 2.0, 1e-9);
  EXPECT_NEAR(cm.utility(0, 0), 2.0 * sim, 1e-9);
}

TEST(ClientManager, NewModelCopiesParentUtility) {
  auto cm = make_cm({1000.0});
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6});
  cm.add_model(spec, 10.0, -1);
  cm.update_utilities(0, 0, -3.0);
  cm.add_model(spec, 20.0, 0);
  EXPECT_NEAR(cm.utility(0, 1), cm.utility(0, 0), 1e-12);
}

TEST(ClientManager, BestModelTieBreaksTowardProvenModel) {
  auto cm = make_cm({1000.0});
  Rng mrng(77);
  Model m0(ModelSpec::conv(1, 8, 4, 4, {6, 8}), mrng);
  Model m1 = widen_cell(m0, 0, 2.0, 1, mrng);  // sim(0,1) < 1
  cm.add_model(m0.spec(), 10.0, -1);
  cm.add_model(m1.spec(), 20.0, 0);  // fresh child copies parent's utility
  // On an exact tie the earlier (longer-trained) model wins; once the child
  // earns strictly higher utility it takes over.
  EXPECT_EQ(cm.best_model(0), 0);
  cm.update_utilities(0, 1, -1.0);  // good round on the child
  EXPECT_EQ(cm.best_model(0), 1);
}

TEST(ClientManager, SimilarityMatrixSymmetricWithUnitDiagonal) {
  auto cm = make_cm({1000.0});
  Rng rng(10);
  Model m0(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);
  Model m1 = deepen_cell(m0, 1, 1, 1, rng);
  cm.add_model(m0.spec(), 10.0, -1);
  cm.add_model(m1.spec(), 20.0, 0);
  EXPECT_DOUBLE_EQ(cm.similarity(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cm.similarity(0, 1), cm.similarity(1, 0));
}

// --------------------------------------------------------- Aggregator ---

TEST(Aggregator, DisabledCrossSharingIsNoOp) {
  Rng rng(11);
  Model m0(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  Model m1 = widen_cell(m0, 0, 2.0, 1, rng);
  auto w1_before = m1.weights();
  SoftAggregator agg({0.98, /*enable_cross=*/false, true, false});
  std::vector<Model*> models{&m0, &m1};
  std::vector<std::vector<double>> sim{{1.0, 0.5}, {0.5, 1.0}};
  agg.aggregate(models, sim, 5);
  auto w1_after = m1.weights();
  for (std::size_t i = 0; i < w1_before.size(); ++i)
    for (std::int64_t j = 0; j < w1_before[i].numel(); ++j)
      EXPECT_EQ(w1_before[i][j], w1_after[i][j]);
}

TEST(Aggregator, SmallToLargeBlendMatchesEq5) {
  Rng rng(12);
  Model m0(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  Model m1 = widen_cell(m0, 0, 2.0, 1, rng);
  // Make weights distinct constants on the shared stem to hand-verify.
  auto w0 = m0.weights();
  auto w1 = m1.weights();
  w0[0].fill(1.0f);
  w1[0].fill(3.0f);
  m0.set_weights(w0);
  m1.set_weights(w1);

  const double s = 0.5, eta = 0.9;
  const int t = 3;
  SoftAggregator agg({eta, true, true, false});
  std::vector<Model*> models{&m0, &m1};
  std::vector<std::vector<double>> sim{{1.0, s}, {s, 1.0}};
  agg.aggregate(models, sim, t);

  // Model 0 must be untouched (no l2s).
  EXPECT_FLOAT_EQ(m0.weights()[0][0], 1.0f);
  // Model 1 stem: (η^t·s·1 + 1·3) / (η^t·s + 1).
  const double coeff = std::pow(eta, t) * s;
  const double expect = (coeff * 1.0 + 3.0) / (coeff + 1.0);
  EXPECT_NEAR(m1.weights()[0][0], expect, 1e-5);
}

TEST(Aggregator, L2sAlsoUpdatesSmallModel) {
  Rng rng(13);
  Model m0(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  Model m1 = widen_cell(m0, 0, 2.0, 1, rng);
  auto w0 = m0.weights();
  w0[0].fill(1.0f);
  m0.set_weights(w0);
  auto w1 = m1.weights();
  w1[0].fill(3.0f);
  m1.set_weights(w1);
  SoftAggregator agg({0.98, true, true, /*l2s=*/true});
  std::vector<Model*> models{&m0, &m1};
  std::vector<std::vector<double>> sim{{1.0, 0.5}, {0.5, 1.0}};
  agg.aggregate(models, sim, 0);
  EXPECT_GT(m0.weights()[0][0], 1.0f);  // pulled toward the large model
}

TEST(Aggregator, DecayReducesCrossInfluenceOverRounds) {
  auto blended_at = [](int round) {
    Rng rng(14);
    Model m0(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
    Model m1 = widen_cell(m0, 0, 2.0, 1, rng);
    auto w0 = m0.weights();
    w0[0].fill(1.0f);
    m0.set_weights(w0);
    auto w1 = m1.weights();
    w1[0].fill(3.0f);
    m1.set_weights(w1);
    SoftAggregator agg({0.9, true, true, false});
    std::vector<Model*> models{&m0, &m1};
    std::vector<std::vector<double>> sim{{1.0, 0.5}, {0.5, 1.0}};
    agg.aggregate(models, sim, round);
    return m1.weights()[0][0];
  };
  // Later rounds: smaller pull toward the small model's value (1.0).
  EXPECT_LT(blended_at(1), blended_at(50));
}

}  // namespace
}  // namespace fedtrans
