// SIMD GEMM backends: scalar-vs-SIMD parity fuzz across random shapes
// (including ragged tails smaller than the register tiles), transposes and
// alpha/beta combinations; grouped-conv forward/backward parity on the
// batched im2col lowering; and per-backend bitwise thread-count
// determinism.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/grouped_conv2d.hpp"
#include "nn/im2col.hpp"
#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

using testing::max_abs_diff;

std::vector<GemmBackend> available_backends() {
  std::vector<GemmBackend> bs{GemmBackend::Scalar};
  for (GemmBackend b :
       {GemmBackend::Avx2, GemmBackend::Avx512, GemmBackend::Neon})
    if (gemm_backend_available(b)) bs.push_back(b);
  return bs;
}

/// Run one gemm under `backend`, restoring the previous backend after.
std::vector<float> run_gemm(GemmBackend backend, bool ta, bool tb, int m,
                            int n, int k, float alpha,
                            const std::vector<float>& a, int lda,
                            const std::vector<float>& b, int ldb, float beta,
                            std::vector<float> c, int ldc) {
  const GemmBackend prev = gemm_backend();
  set_gemm_backend(backend);
  gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta, c.data(),
       ldc);
  set_gemm_backend(prev);
  return c;
}

TEST(GemmSimd, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(gemm_backend_available(GemmBackend::Scalar));
  EXPECT_TRUE(gemm_backend_available(best_gemm_backend()));
  EXPECT_TRUE(gemm_backend_available(gemm_backend()));
}

TEST(GemmSimd, BackendNamesAreDistinct) {
  EXPECT_STREQ(gemm_backend_name(GemmBackend::Scalar), "scalar");
  EXPECT_STREQ(gemm_backend_name(GemmBackend::Avx2), "avx2");
  EXPECT_STREQ(gemm_backend_name(GemmBackend::Avx512), "avx512");
  EXPECT_STREQ(gemm_backend_name(GemmBackend::Neon), "neon");
}

// Fuzz every available SIMD backend against the scalar reference across
// shapes that exercise full tiles, ragged M/N/K tails, the small-problem
// fast path and the blocked path, under all four transpose combinations
// and non-trivial alpha/beta.
TEST(GemmSimd, ParityFuzzAcrossShapesAndTransposes) {
  const auto backends = available_backends();
  Rng rng(42);
  for (int iter = 0; iter < 60; ++iter) {
    // Mix tiny (tail-only) and large (blocked, multi-tile) shapes.
    const int m = 1 + rng.uniform_int(0, iter % 3 == 0 ? 150 : 20);
    const int n = 1 + rng.uniform_int(0, iter % 3 == 1 ? 150 : 20);
    const int k = 1 + rng.uniform_int(0, iter % 3 == 2 ? 150 : 20);
    const bool ta = rng.uniform_int(0, 1) == 1;
    const bool tb = rng.uniform_int(0, 1) == 1;
    const float alpha = iter % 4 == 0 ? 0.5f : 1.0f;
    const float beta = iter % 5 == 0 ? 0.25f : 0.0f;
    const int lda = ta ? m : k, ldb = tb ? k : n, ldc = n;

    std::vector<float> a(static_cast<std::size_t>(m) * k);
    std::vector<float> b(static_cast<std::size_t>(k) * n);
    std::vector<float> c0(static_cast<std::size_t>(m) * n);
    for (auto& v : a) v = static_cast<float>(rng.normal(0.0, 1.0));
    for (auto& v : b) v = static_cast<float>(rng.normal(0.0, 1.0));
    for (auto& v : c0) v = static_cast<float>(rng.normal(0.0, 1.0));

    const auto ref = run_gemm(GemmBackend::Scalar, ta, tb, m, n, k, alpha, a,
                              lda, b, ldb, beta, c0, ldc);
    for (GemmBackend backend : backends) {
      if (backend == GemmBackend::Scalar) continue;
      const auto got = run_gemm(backend, ta, tb, m, n, k, alpha, a, lda, b,
                                ldb, beta, c0, ldc);
      double max_diff = 0.0;
      for (std::size_t i = 0; i < ref.size(); ++i)
        max_diff = std::max(
            max_diff, std::abs(static_cast<double>(ref[i]) - got[i]));
      EXPECT_LT(max_diff, 1e-4)
          << gemm_backend_name(backend) << " diverged from scalar at shape "
          << m << "x" << n << "x" << k << " ta=" << ta << " tb=" << tb;
    }
  }
}

// Every backend must produce bitwise-identical output regardless of how
// many threads the blocked loop fans row panels out to. m = 123 drives the
// row-panel-parallel blocked path, m = 16 the short-M B-direct path
// (parallel over column strips) on tiers that have one.
TEST(GemmSimd, BitwiseDeterministicAcrossThreadCounts) {
  struct Shape {
    int m, n, k;
  };
  for (const Shape s : {Shape{123, 77, 131}, Shape{16, 784, 144}}) {
    const int m = s.m, n = s.n, k = s.k;
    Rng rng(7);
    std::vector<float> a(static_cast<std::size_t>(m) * k);
    std::vector<float> b(static_cast<std::size_t>(k) * n);
    for (auto& v : a) v = static_cast<float>(rng.normal(0.0, 1.0));
    for (auto& v : b) v = static_cast<float>(rng.normal(0.0, 1.0));
    std::vector<float> zero(static_cast<std::size_t>(m) * n, 0.0f);

    for (GemmBackend backend : available_backends()) {
      std::vector<std::vector<float>> outs;
      for (int threads : {1, 2, 4}) {
        ThreadPool::set_global_threads(threads);
        outs.push_back(run_gemm(backend, false, false, m, n, k, 1.0f, a, k, b,
                                n, 0.0f, zero, n));
      }
      for (std::size_t t = 1; t < outs.size(); ++t)
        for (std::size_t i = 0; i < outs[0].size(); ++i)
          ASSERT_EQ(outs[0][i], outs[t][i])
              << gemm_backend_name(backend) << " at shape " << m << "x" << n
              << "x" << k << " not thread-count deterministic at element "
              << i;
    }
  }
  ThreadPool::set_global_threads(ThreadPool::global_threads());
}

// The fused half-widening GEMM must agree with widening up front and
// running the fp32 path.
TEST(GemmSimd, HalfGemmMatchesWidenedFloatGemm) {
  const int m = 37, n = 53, k = 41;
  Rng rng(11);
  std::vector<float> af(static_cast<std::size_t>(m) * k);
  std::vector<float> bf(static_cast<std::size_t>(k) * n);
  for (auto& v : af) v = static_cast<float>(rng.normal(0.0, 1.0));
  for (auto& v : bf) v = static_cast<float>(rng.normal(0.0, 1.0));

  for (Dtype d : {Dtype::F16, Dtype::BF16}) {
    std::vector<std::uint16_t> ah(af.size()), bh(bf.size());
    f32_to_half(af.data(), ah.data(), static_cast<std::int64_t>(af.size()), d);
    f32_to_half(bf.data(), bh.data(), static_cast<std::int64_t>(bf.size()), d);
    // Widen the half bits back to f32: this is exactly what gemm_half's
    // packing readers see, so the two paths must agree bitwise.
    std::vector<float> aw(af.size()), bw(bf.size());
    half_to_f32(ah.data(), aw.data(), static_cast<std::int64_t>(ah.size()), d);
    half_to_f32(bh.data(), bw.data(), static_cast<std::int64_t>(bh.size()), d);

    std::vector<float> want(static_cast<std::size_t>(m) * n, 0.0f);
    gemm(false, false, m, n, k, 1.0f, aw.data(), k, bw.data(), n, 0.0f,
         want.data(), n);
    std::vector<float> got(static_cast<std::size_t>(m) * n, 0.0f);
    gemm_half(false, false, m, n, k, 1.0f, ah.data(), k, d, bh.data(), n, d,
              0.0f, got.data(), n);
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(want[i], got[i]) << "dtype " << dtype_name(d);
  }
}

// Grouped conv must agree with the direct loop-nest reference for every
// group count, on both the forward pass and all backward outputs — the
// batched [ckk, bt·oh·ow] panel lowering only reassociates sums.
TEST(GemmSimd, GroupedConvParityWithDirectReference) {
  Rng rng(13);
  for (int groups : {1, 2, 4, 8}) {
    GroupedConv2d ref_conv(16, 24, 3, groups, 1);
    ref_conv.init(rng);
    GroupedConv2d im_conv = ref_conv;  // identical weights

    Tensor x({3, 16, 9, 9});
    x.randn(rng);

    set_conv_backend(ConvBackend::Direct);
    Tensor y_ref = ref_conv.forward(x, true);
    set_conv_backend(ConvBackend::Im2col);
    Tensor y_im = im_conv.forward(x, true);
    EXPECT_LT(max_abs_diff(y_ref, y_im), 1e-4)
        << "forward parity, groups=" << groups;

    Tensor g(y_ref.shape());
    g.rand_uniform(rng, -0.5f, 0.5f);
    set_conv_backend(ConvBackend::Direct);
    Tensor dx_ref = ref_conv.backward(g);
    set_conv_backend(ConvBackend::Im2col);
    Tensor dx_im = im_conv.backward(g);
    EXPECT_LT(max_abs_diff(dx_ref, dx_im), 2e-3)
        << "dx parity, groups=" << groups;

    auto pr = ref_conv.params();
    auto pi = im_conv.params();
    ASSERT_EQ(pr.size(), pi.size());
    for (std::size_t i = 0; i < pr.size(); ++i)
      EXPECT_LT(max_abs_diff(*pr[i].grad, *pi[i].grad), 2e-3)
          << "grad parity for param " << pr[i].name << ", groups=" << groups;
  }
}

// The strided im2col/col2im pair must round-trip exactly like the compact
// single-image layout they generalize.
TEST(GemmSimd, StridedIm2colMatchesCompactLayout) {
  Rng rng(17);
  const int c = 5, h = 7, w = 6, kernel = 3, stride = 2, pad = 1;
  const int oh = (h + 2 * pad - kernel) / stride + 1;
  const int ow = (w + 2 * pad - kernel) / stride + 1;
  const int rows = c * kernel * kernel;
  const std::int64_t plane = static_cast<std::int64_t>(oh) * ow;

  std::vector<float> im(static_cast<std::size_t>(c) * h * w);
  for (auto& v : im) v = static_cast<float>(rng.normal(0.0, 1.0));

  std::vector<float> compact(static_cast<std::size_t>(rows) * plane);
  im2col(im.data(), c, h, w, kernel, stride, pad, compact.data());

  // Strided: rows are twice as wide, image lands in the second half.
  const std::int64_t ld = 2 * plane;
  std::vector<float> wide(static_cast<std::size_t>(rows) * ld, -99.0f);
  im2col(im.data(), c, h, w, kernel, stride, pad, wide.data() + plane, ld);
  for (int r = 0; r < rows; ++r)
    for (std::int64_t j = 0; j < plane; ++j)
      ASSERT_EQ(compact[static_cast<std::size_t>(r) * plane + j],
                wide[static_cast<std::size_t>(r) * ld + plane + j]);

  std::vector<float> back_compact(im.size(), 0.0f);
  col2im(compact.data(), c, h, w, kernel, stride, pad, back_compact.data());
  std::vector<float> back_wide(im.size(), 0.0f);
  col2im(wide.data() + plane, c, h, w, kernel, stride, pad, back_wide.data(),
         ld);
  for (std::size_t i = 0; i < im.size(); ++i)
    ASSERT_EQ(back_compact[i], back_wide[i]);
}

}  // namespace
}  // namespace fedtrans
