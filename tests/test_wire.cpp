// Property tests for the federation-fabric wire protocol (net/wire.hpp):
// random messages survive encode→decode bit-exactly, and truncated or
// corrupted frames raise Error at the framing layer instead of crashing or
// yielding silently corrupt payloads.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "model/spec.hpp"
#include "net/wire.hpp"

namespace fedtrans {
namespace {

WeightSet random_weight_set(Rng& rng, int max_tensors = 5) {
  WeightSet ws;
  const int n = rng.uniform_int(0, max_tensors);
  for (int t = 0; t < n; ++t) {
    std::vector<int> shape;
    const int ndim = rng.uniform_int(1, 3);
    for (int d = 0; d < ndim; ++d) shape.push_back(rng.uniform_int(1, 7));
    Tensor w(shape);
    w.randn(rng, 2.0f);
    ws.push_back(std::move(w));
  }
  return ws;
}

FabricMessage random_message(Rng& rng) {
  FabricMessage m;
  m.type = static_cast<MsgType>(rng.uniform_int(1, 5));
  m.round = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
  m.sender = rng.uniform_int(-1, 512);
  m.receiver = rng.uniform_int(-1, 512);
  if (m.type == MsgType::ModelDown || m.type == MsgType::UpdateUp ||
      m.type == MsgType::JoinRound)
    m.task = rng.uniform_int(0, 4096);
  if (m.type == MsgType::ModelDown || m.type == MsgType::UpdateUp)
    m.weights = random_weight_set(rng);
  if (m.type == MsgType::ModelDown) {
    for (auto& s : m.rng_state) s = rng.next_u64();
    // Heterogeneous payloads carry their architecture on the wire (v2);
    // shared-blob broadcasts leave it empty.
    if (rng.uniform_int(0, 1) == 1)
      m.spec_text = ModelSpec::conv(1, 8, 4, 4, {6, 8}).serialize();
  }
  if (m.type == MsgType::UpdateUp) {
    m.avg_loss = rng.uniform(-10.0, 10.0);
    m.num_samples = rng.uniform_int(0, 10000);
    m.macs_used = rng.uniform(0.0, 1e12);
  }
  if (m.type == MsgType::Abort) m.reason = "dropout: client went offline";
  return m;
}

void expect_equal(const FabricMessage& a, const FabricMessage& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.sender, b.sender);
  EXPECT_EQ(a.receiver, b.receiver);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t i = 0; i < a.weights.size(); ++i) {
    ASSERT_EQ(a.weights[i].shape(), b.weights[i].shape());
    for (std::int64_t j = 0; j < a.weights[i].numel(); ++j)
      EXPECT_EQ(a.weights[i][j], b.weights[i][j]) << "tensor " << i;
  }
  EXPECT_EQ(a.task, b.task);
  if (a.type == MsgType::ModelDown) {
    EXPECT_EQ(a.rng_state, b.rng_state);
    EXPECT_EQ(a.spec_text, b.spec_text);
  }
  if (a.type == MsgType::UpdateUp) {
    EXPECT_EQ(a.avg_loss, b.avg_loss);
    EXPECT_EQ(a.num_samples, b.num_samples);
    EXPECT_EQ(a.macs_used, b.macs_used);
  }
  if (a.type == MsgType::Abort) {
    EXPECT_EQ(a.reason, b.reason);
  }
}

TEST(WireTest, RandomMessagesRoundTripBitwise) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const FabricMessage msg = random_message(rng);
    const std::string frame = encode_message(msg);
    EXPECT_EQ(frame_size(frame), frame.size());
    expect_equal(msg, decode_message(frame));
  }
}

TEST(WireTest, WeightSetCodecRoundTripsBitwise) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const WeightSet ws = random_weight_set(rng, 8);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_weight_set(ss, ws);
    const WeightSet back = read_weight_set(ss);
    ASSERT_EQ(ws.size(), back.size());
    for (std::size_t i = 0; i < ws.size(); ++i) {
      ASSERT_EQ(ws[i].shape(), back[i].shape());
      for (std::int64_t j = 0; j < ws[i].numel(); ++j)
        EXPECT_EQ(ws[i][j], back[i][j]);
    }
  }
}

TEST(WireTest, EveryTruncationFailsCleanly) {
  Rng rng(99);
  const FabricMessage msg = random_message(rng);
  const std::string frame = encode_message(msg);
  // Chop the frame at a spread of lengths (every prefix for short frames);
  // each must throw Error — never crash, never decode.
  const std::size_t step = std::max<std::size_t>(1, frame.size() / 97);
  for (std::size_t cut = 0; cut < frame.size(); cut += step)
    EXPECT_THROW(decode_message(frame.substr(0, cut)), Error)
        << "truncated at " << cut << "/" << frame.size();
}

TEST(WireTest, SingleByteCorruptionIsDetected) {
  Rng rng(123);
  FabricMessage msg;
  msg.type = MsgType::UpdateUp;
  msg.round = 3;
  msg.sender = 5;
  msg.receiver = kServerId;
  msg.weights = random_weight_set(rng, 4);
  msg.avg_loss = 1.25;
  msg.num_samples = 64;
  const std::string frame = encode_message(msg);

  // Flip one byte at a spread of positions. Header corruption trips the
  // magic/version/type/length checks; payload corruption trips the
  // checksum. Either way decode_message must throw, not return garbage.
  const std::size_t step = std::max<std::size_t>(1, frame.size() / 61);
  for (std::size_t pos = 0; pos < frame.size(); pos += step) {
    std::string bad = frame;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_THROW(decode_message(bad), Error) << "corrupt byte " << pos;
  }
}

TEST(WireTest, TrailingGarbageIsRejected) {
  FabricMessage msg;
  msg.type = MsgType::JoinRound;
  msg.round = 1;
  std::string frame = encode_message(msg);
  frame += "xx";
  EXPECT_THROW(decode_message(frame), Error);
}

TEST(WireTest, FrameSizeSplitsConcatenatedFrames) {
  Rng rng(5);
  const FabricMessage a = random_message(rng);
  const FabricMessage b = random_message(rng);
  const std::string fa = encode_message(a);
  const std::string fb = encode_message(b);
  const std::string stream = fa + fb;
  const std::size_t split = frame_size(stream);
  ASSERT_EQ(split, fa.size());
  expect_equal(a, decode_message(std::string_view(stream).substr(0, split)));
  expect_equal(b, decode_message(std::string_view(stream).substr(split)));
}

TEST(WireTest, PartialUpBundleRoundTripsBitwise) {
  Rng rng(17);
  PartialUpdate p;
  p.shard = 2;
  for (int i = 0; i < 4; ++i) {
    UpdateEntry e;
    e.task = 2 + 3 * i;  // slot i of shard 2 in a 3-shard topology
    e.client = rng.uniform_int(0, 64);
    e.delta = random_weight_set(rng);
    e.avg_loss = rng.uniform(-4.0, 4.0);
    e.num_samples = rng.uniform_int(1, 512);
    e.macs_used = rng.uniform(0.0, 1e9);
    p.entries.push_back(std::move(e));
  }
  const std::string frame =
      encode_partial_up(9, aggregator_id(2), kServerId, p);
  EXPECT_EQ(frame_type(frame), MsgType::PartialUp);
  EXPECT_EQ(frame_size(frame), frame.size());
  const PartialUpdate back = decode_partial_up(frame);
  EXPECT_EQ(back.round, 9u);
  EXPECT_EQ(back.sender, aggregator_id(2));
  EXPECT_EQ(back.shard, 2);
  ASSERT_EQ(back.entries.size(), p.entries.size());
  for (std::size_t i = 0; i < p.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].task, p.entries[i].task);
    EXPECT_EQ(back.entries[i].client, p.entries[i].client);
    EXPECT_EQ(back.entries[i].avg_loss, p.entries[i].avg_loss);
    EXPECT_EQ(back.entries[i].num_samples, p.entries[i].num_samples);
    EXPECT_EQ(back.entries[i].macs_used, p.entries[i].macs_used);
    ASSERT_EQ(back.entries[i].delta.size(), p.entries[i].delta.size());
    for (std::size_t t = 0; t < p.entries[i].delta.size(); ++t)
      for (std::int64_t j = 0; j < p.entries[i].delta[t].numel(); ++j)
        EXPECT_EQ(back.entries[i].delta[t][j], p.entries[i].delta[t][j]);
  }
  // Bundles have their own decoders; the flat-message one refuses them.
  EXPECT_THROW(decode_message(frame), Error);
  // Corruption anywhere still trips the checksum.
  std::string bad = frame;
  bad[frame.size() / 2] = static_cast<char>(bad[frame.size() / 2] ^ 0x10);
  EXPECT_THROW(decode_partial_up(bad), Error);
}

PartialUpdate random_reduced_bundle(Rng& rng, int entries, int groups) {
  PartialUpdate p;
  p.shard = rng.uniform_int(0, 7);
  p.reduced = true;
  for (int i = 0; i < entries; ++i) {
    UpdateEntry e;
    e.task = rng.uniform_int(0, 4096);
    e.client = rng.uniform_int(0, 512);
    // Metrics only: reduced bundles never carry per-task deltas.
    e.avg_loss = rng.uniform(-4.0, 4.0);
    e.num_samples = rng.uniform_int(1, 512);
    e.macs_used = rng.uniform(0.0, 1e9);
    p.entries.push_back(std::move(e));
  }
  for (int g = 0; g < groups; ++g) {
    ReducedGroup r;
    r.key = rng.uniform_int(0, 4);
    r.min_slot = rng.uniform_int(0, 4096);
    r.count = rng.uniform_int(1, 32);
    r.weight = rng.uniform(1.0, 1e4);
    r.sum = random_weight_set(rng);
    p.groups.push_back(std::move(r));
  }
  return p;
}

void expect_equal_reduced(const PartialUpdate& a, const PartialUpdate& b) {
  EXPECT_EQ(a.reduced, b.reduced);
  EXPECT_EQ(a.shard, b.shard);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].task, b.entries[i].task);
    EXPECT_EQ(a.entries[i].client, b.entries[i].client);
    EXPECT_EQ(a.entries[i].avg_loss, b.entries[i].avg_loss);
    EXPECT_EQ(a.entries[i].num_samples, b.entries[i].num_samples);
    EXPECT_EQ(a.entries[i].macs_used, b.entries[i].macs_used);
    EXPECT_TRUE(b.entries[i].delta.empty());
  }
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].key, b.groups[g].key);
    EXPECT_EQ(a.groups[g].min_slot, b.groups[g].min_slot);
    EXPECT_EQ(a.groups[g].count, b.groups[g].count);
    EXPECT_EQ(a.groups[g].weight, b.groups[g].weight);
    ASSERT_EQ(a.groups[g].sum.size(), b.groups[g].sum.size());
    for (std::size_t t = 0; t < a.groups[g].sum.size(); ++t)
      for (std::int64_t j = 0; j < a.groups[g].sum[t].numel(); ++j)
        EXPECT_EQ(a.groups[g].sum[t][j], b.groups[g].sum[t][j]);
  }
}

TEST(WireTest, ReducedPartialUpRoundTripsBitwise) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const PartialUpdate p =
        random_reduced_bundle(rng, rng.uniform_int(1, 8),
                              rng.uniform_int(1, 4));
    const std::string frame =
        encode_partial_up(7, aggregator_id(3), kServerId, p);
    EXPECT_EQ(frame_type(frame), MsgType::PartialUp);
    EXPECT_EQ(frame_size(frame), frame.size());
    const PartialUpdate back = decode_partial_up(frame);
    EXPECT_EQ(back.round, 7u);
    EXPECT_EQ(back.sender, aggregator_id(3));
    expect_equal_reduced(p, back);
  }
}

TEST(WireTest, ReducedPartialUpEdgeCases) {
  Rng rng(37);
  // Zero-task / zero-group: a valid (if pointless) reduced bundle — the
  // codec must not conflate "no groups" with the verbatim layout.
  PartialUpdate empty;
  empty.shard = 0;
  empty.reduced = true;
  const PartialUpdate back =
      decode_partial_up(encode_partial_up(1, aggregator_id(0), kServerId,
                                          empty));
  EXPECT_TRUE(back.reduced);
  EXPECT_TRUE(back.entries.empty());
  EXPECT_TRUE(back.groups.empty());

  // Max-slot extremes survive the trip (slot ids are i32 on the wire).
  PartialUpdate wide = random_reduced_bundle(rng, 1, 1);
  wide.entries[0].task = std::numeric_limits<std::int32_t>::max();
  wide.groups[0].min_slot = std::numeric_limits<std::int32_t>::max();
  wide.groups[0].key = std::numeric_limits<std::int32_t>::max();
  const PartialUpdate wback =
      decode_partial_up(encode_partial_up(2, aggregator_id(1), kServerId,
                                          wide));
  expect_equal_reduced(wide, wback);

  // A "reduced" bundle whose entry still carries a delta is a codec
  // violation the decoder refuses (it would double-count the update).
  PartialUpdate lying = random_reduced_bundle(rng, 1, 1);
  lying.entries[0].delta = random_weight_set(rng, 3);
  while (lying.entries[0].delta.empty())
    lying.entries[0].delta = random_weight_set(rng, 3);
  EXPECT_THROW(decode_partial_up(encode_partial_up(3, aggregator_id(0),
                                                   kServerId, lying)),
               Error);

  // The retry flag rides bundle headers exactly like flat frames, and a
  // duplicate-delivered flagged frame decodes to identical content.
  const PartialUpdate p = random_reduced_bundle(rng, 2, 2);
  const std::string flagged =
      encode_partial_up(4, aggregator_id(2), kServerId, p, kFlagRetry);
  expect_equal_reduced(p, decode_partial_up(flagged));
  expect_equal_reduced(decode_partial_up(flagged), decode_partial_up(flagged));
}

TEST(WireTest, ReducedPartialUpFuzzedTruncationAndCorruption) {
  Rng rng(41);
  const PartialUpdate p = random_reduced_bundle(rng, 3, 2);
  const std::string frame =
      encode_partial_up(9, aggregator_id(1), kServerId, p);
  const std::size_t tstep = std::max<std::size_t>(1, frame.size() / 97);
  for (std::size_t cut = 0; cut < frame.size(); cut += tstep)
    EXPECT_THROW(decode_partial_up(frame.substr(0, cut)), Error)
        << "truncated at " << cut << "/" << frame.size();
  const std::size_t cstep = std::max<std::size_t>(1, frame.size() / 61);
  for (std::size_t pos = 0; pos < frame.size(); pos += cstep) {
    std::string bad = frame;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_THROW(decode_partial_up(bad), Error) << "corrupt byte " << pos;
  }
  std::string trailing = frame;
  trailing += "zz";
  EXPECT_THROW(decode_partial_up(trailing), Error);
}

TEST(WireTest, ShardDownBundleRoundTripsBitwise) {
  Rng rng(23);
  ShardDownlink d;
  d.shard = 1;
  d.leaf_lo = 1;
  d.leaf_hi = 2;
  // Bodies are opaque byte strings (embedded NULs included).
  d.bodies.push_back(std::string("level0\0body", 11));
  d.bodies.push_back("level1body");
  for (int i = 0; i < 5; ++i) {
    DownlinkTask t;
    t.task = 1 + 2 * i;
    t.client = rng.uniform_int(0, 64);
    t.body = static_cast<std::uint32_t>(i % 2);
    t.reduce = i % 3 == 0 ? -1 : i % 3;
    for (auto& s : t.rng_state) s = rng.next_u64();
    d.tasks.push_back(t);
  }
  const std::string frame = encode_shard_down(4, kServerId, aggregator_id(1), d);
  EXPECT_EQ(frame_type(frame), MsgType::ShardDown);
  const ShardDownlink back = decode_shard_down(frame);
  EXPECT_EQ(back.round, 4u);
  EXPECT_EQ(back.shard, 1);
  EXPECT_EQ(back.leaf_lo, 1);
  EXPECT_EQ(back.leaf_hi, 2);
  ASSERT_EQ(back.bodies.size(), 2u);
  EXPECT_EQ(back.bodies[0], d.bodies[0]);
  EXPECT_EQ(back.bodies[1], d.bodies[1]);
  ASSERT_EQ(back.tasks.size(), d.tasks.size());
  for (std::size_t i = 0; i < d.tasks.size(); ++i) {
    EXPECT_EQ(back.tasks[i].task, d.tasks[i].task);
    EXPECT_EQ(back.tasks[i].client, d.tasks[i].client);
    EXPECT_EQ(back.tasks[i].body, d.tasks[i].body);
    EXPECT_EQ(back.tasks[i].reduce, d.tasks[i].reduce);
    EXPECT_EQ(back.tasks[i].rng_state, d.tasks[i].rng_state);
  }
  EXPECT_THROW(decode_message(frame), Error);
  // A task referencing a body past the table is rejected at decode.
  ShardDownlink oob = d;
  oob.tasks[0].body = 7;
  EXPECT_THROW(
      decode_shard_down(encode_shard_down(4, kServerId, kServerId, oob)),
      Error);
  // An interior-split bundle covering several leaves round-trips its
  // routing metadata too; an inverted range is rejected at decode.
  ShardDownlink wide = d;
  wide.shard = -1;
  wide.leaf_lo = 4;
  wide.leaf_hi = 8;
  const ShardDownlink wide_back = decode_shard_down(
      encode_shard_down(4, kServerId, aggregator_id(9), wide));
  EXPECT_EQ(wide_back.shard, -1);
  EXPECT_EQ(wide_back.leaf_lo, 4);
  EXPECT_EQ(wide_back.leaf_hi, 8);
  ShardDownlink inverted = d;
  inverted.leaf_lo = 3;
  inverted.leaf_hi = 3;
  EXPECT_THROW(decode_shard_down(encode_shard_down(
                   4, kServerId, aggregator_id(3), inverted)),
               Error);
}

TEST(WireTest, RetryFlagRidesTheHeader) {
  FabricMessage msg;
  msg.type = MsgType::UpdateUp;
  msg.round = 2;
  msg.sender = 3;
  msg.receiver = kServerId;
  msg.flags = kFlagRetry;
  const FabricMessage back = decode_message(encode_message(msg));
  EXPECT_EQ(back.flags, kFlagRetry);
  msg.flags = 0;
  EXPECT_EQ(decode_message(encode_message(msg)).flags, 0);
}

TEST(WireTest, WireVersionIsSix) {
  // Regression pin for the protocol rev: the v6 features (quantized
  // partials, broadcast-cache elision, delta downlinks) changed the frame
  // payloads, so mixed-version peers must be rejected at the header.
  EXPECT_EQ(kWireVersion, 6);

  Rng rng(53);
  FabricMessage msg;
  msg.type = MsgType::UpdateUp;
  msg.round = 1;
  msg.sender = 2;
  msg.receiver = kServerId;
  msg.weights = random_weight_set(rng);
  const PartialUpdate p = random_reduced_bundle(rng, 2, 1);
  ShardDownlink d;
  d.bodies.push_back("body");
  DownlinkTask t;
  d.tasks.push_back(t);
  const std::string frames[] = {
      encode_message(msg), encode_partial_up(1, aggregator_id(0), kServerId, p),
      encode_shard_down(1, kServerId, aggregator_id(0), d)};
  for (const std::string& frame : frames) {
    // Every on-the-wire version other than ours must be rejected by every
    // decoder — stale (v5 and earlier) or future alike.
    for (const std::uint16_t v : {std::uint16_t{5}, std::uint16_t{7}}) {
      std::string bad = frame;
      bad[4] = static_cast<char>(v & 0xff);
      bad[5] = static_cast<char>(v >> 8);
      EXPECT_THROW(decode_message(bad), Error);
      EXPECT_THROW(decode_partial_up(bad), Error);
      EXPECT_THROW(decode_shard_down(bad), Error);
    }
  }
}

TEST(WireTest, QuantizedPartialUpInt8RoundTripsWithinScale) {
  Rng rng(61);
  for (int trial = 0; trial < 20; ++trial) {
    PartialUpdate p = random_reduced_bundle(rng, rng.uniform_int(1, 6),
                                            rng.uniform_int(1, 4));
    p.quant = kPartialQuantInt8;
    const std::string frame =
        encode_partial_up(5, aggregator_id(1), kServerId, p);
    // The same bundle encodes to the same bytes — quantization is a pure
    // function of the values, no hidden state.
    EXPECT_EQ(frame, encode_partial_up(5, aggregator_id(1), kServerId, p));
    const PartialUpdate back = decode_partial_up(frame);
    EXPECT_EQ(back.quant, kPartialQuantInt8);
    EXPECT_TRUE(back.reduced);
    ASSERT_EQ(back.groups.size(), p.groups.size());
    for (std::size_t g = 0; g < p.groups.size(); ++g) {
      EXPECT_EQ(back.groups[g].key, p.groups[g].key);
      EXPECT_EQ(back.groups[g].weight, p.groups[g].weight);
      ASSERT_EQ(back.groups[g].sum.size(), p.groups[g].sum.size());
      // One shared scale per group: every element lands within half an
      // int8 step of the original, and decoded tensors are plain fp32.
      float amax = 0.0f;
      for (const Tensor& w : p.groups[g].sum)
        for (std::int64_t j = 0; j < w.numel(); ++j)
          amax = std::max(amax, std::abs(w[j]));
      const float scale = amax / 127.0f;
      for (std::size_t t = 0; t < p.groups[g].sum.size(); ++t) {
        ASSERT_EQ(back.groups[g].sum[t].shape(), p.groups[g].sum[t].shape());
        EXPECT_EQ(back.groups[g].sum[t].dtype(), Dtype::F32);
        for (std::int64_t j = 0; j < p.groups[g].sum[t].numel(); ++j)
          EXPECT_NEAR(back.groups[g].sum[t][j], p.groups[g].sum[t][j],
                      scale * 0.5f + 1e-7f)
              << "group " << g << " tensor " << t << " elem " << j;
      }
    }
    // int8 group sums are genuinely smaller on the wire than fp32 ones.
    PartialUpdate exact = p;
    exact.quant = kPartialQuantF32;
    bool has_values = false;
    for (const ReducedGroup& g : p.groups)
      for (const Tensor& w : g.sum) has_values = has_values || w.numel() > 0;
    if (has_values) {
      EXPECT_LT(frame.size(),
                encode_partial_up(5, aggregator_id(1), kServerId, exact)
                    .size());
    }
  }
}

TEST(WireTest, QuantizedPartialUpF16RoundTripsWithinHalfPrecision) {
  Rng rng(67);
  PartialUpdate p = random_reduced_bundle(rng, 3, 3);
  p.quant = kPartialQuantF16;
  const PartialUpdate back =
      decode_partial_up(encode_partial_up(6, aggregator_id(2), kServerId, p));
  EXPECT_EQ(back.quant, kPartialQuantF16);
  ASSERT_EQ(back.groups.size(), p.groups.size());
  for (std::size_t g = 0; g < p.groups.size(); ++g) {
    ASSERT_EQ(back.groups[g].sum.size(), p.groups[g].sum.size());
    for (std::size_t t = 0; t < p.groups[g].sum.size(); ++t) {
      EXPECT_EQ(back.groups[g].sum[t].dtype(), Dtype::F32);
      for (std::int64_t j = 0; j < p.groups[g].sum[t].numel(); ++j) {
        const float v = p.groups[g].sum[t][j];
        // fp16 keeps 11 significand bits: relative error <= 2^-11.
        EXPECT_NEAR(back.groups[g].sum[t][j], v,
                    std::abs(v) * (1.0f / 2048.0f) + 1e-6f);
      }
    }
  }

  // An unknown quantization mode is refused at encode, before any bytes
  // reach the wire.
  PartialUpdate bad = random_reduced_bundle(rng, 1, 1);
  bad.quant = 3;
  EXPECT_THROW(encode_partial_up(7, aggregator_id(0), kServerId, bad), Error);
}

TEST(WireTest, ShardDownElisionRoundTripsThroughBroadcastCache) {
  Rng rng(71);
  ShardDownlink d;
  d.shard = 0;
  d.leaf_lo = 0;
  d.leaf_hi = 1;
  // Bodies follow the real [spec string][weights] layout so spec digests
  // are meaningful.
  for (int b = 0; b < 2; ++b) {
    std::ostringstream os(std::ios::binary);
    write_string(os, ModelSpec::conv(1, 8, 4, 4, {6, 8 + b}).serialize());
    write_weight_set(os, random_weight_set(rng, 3));
    d.bodies.push_back(os.str());
  }
  for (int i = 0; i < 4; ++i) {
    DownlinkTask t;
    t.task = i;
    t.client = i;
    t.body = static_cast<std::uint32_t>(i % 2);
    for (auto& s : t.rng_state) s = rng.next_u64();
    d.tasks.push_back(t);
  }

  // Cold round: everything ships, the receiver caches what it decoded.
  BroadcastCache cache;
  const std::string cold = encode_shard_down(3, kServerId, aggregator_id(0), d);
  const ShardDownlink cold_back = decode_shard_down(cold, &cache);
  EXPECT_EQ(cold_back.bodies, d.bodies);
  EXPECT_EQ(cache.size(), 2u);

  // Warm round: the sender elides body 0; the receiver reconstructs it
  // from its cache and the bundle decodes identically to a cold one.
  const std::vector<std::uint8_t> elide = {1, 0};
  const std::string warm =
      encode_shard_down(4, kServerId, aggregator_id(0), d, 0, &elide);
  // An elided entry ships the u64 hash where the u64 length prefix would
  // have been — the saving is exactly the body's bytes.
  EXPECT_EQ(warm.size(), cold.size() - d.bodies[0].size());
  const ShardDownlink warm_back = decode_shard_down(warm, &cache);
  EXPECT_EQ(warm_back.bodies, d.bodies);
  for (const std::uint8_t m : warm_back.missing) EXPECT_EQ(m, 0);
  ASSERT_EQ(warm_back.tasks.size(), d.tasks.size());
  for (std::size_t i = 0; i < d.tasks.size(); ++i)
    EXPECT_EQ(warm_back.tasks[i].rng_state, d.tasks[i].rng_state);

  // A cache miss (cold receiver, or no cache at all) must not fabricate
  // payload: the body comes back empty and flagged missing.
  BroadcastCache empty_cache;
  const ShardDownlink miss = decode_shard_down(warm, &empty_cache);
  ASSERT_EQ(miss.missing.size(), 2u);
  EXPECT_EQ(miss.missing[0], 1);
  EXPECT_EQ(miss.missing[1], 0);
  EXPECT_TRUE(miss.bodies[0].empty());
  EXPECT_EQ(miss.bodies[1], d.bodies[1]);
  const ShardDownlink no_cache = decode_shard_down(warm);
  EXPECT_EQ(no_cache.missing[0], 1);

  // A same-spec body with new content evicts the cached one (the sender
  // mirrors this rule, so it would not have elided against stale bytes).
  std::ostringstream os(std::ios::binary);
  write_string(os, ModelSpec::conv(1, 8, 4, 4, {6, 8}).serialize());
  write_weight_set(os, random_weight_set(rng, 3));
  ShardDownlink next = d;
  next.bodies[0] = os.str();
  BroadcastCache evicting;
  decode_shard_down(encode_shard_down(5, kServerId, aggregator_id(0), d),
                    &evicting);
  decode_shard_down(encode_shard_down(6, kServerId, aggregator_id(0), next),
                    &evicting);
  EXPECT_EQ(evicting.find(broadcast_body_hash(d.bodies[0])), nullptr);
  ASSERT_NE(evicting.find(broadcast_body_hash(next.bodies[0])), nullptr);
}

TEST(WireTest, WeightDeltaCodecReconstructsBitwise) {
  Rng rng(73);
  WeightSet prev = random_weight_set(rng, 6);
  while (prev.size() < 3) prev = random_weight_set(rng, 6);
  WeightSet next;
  for (const Tensor& w : prev) next.push_back(w);
  // Tensor 0 stays identical (Same), tensor 1 gets a smooth additive nudge
  // (Delta or Literal — the writer proves bitwise reconstruction and picks),
  // tensor 2 is rewritten wholesale (Literal).
  for (std::int64_t j = 0; j < next[1].numel(); ++j) next[1][j] += 0.25f;
  next[2].randn(rng, 3.0f);

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_weight_delta(ss, 41, prev, next);
  std::uint64_t base = 0;
  const WeightSet back = read_weight_delta(ss, prev, base);
  EXPECT_EQ(base, 41u);
  ASSERT_EQ(back.size(), next.size());
  for (std::size_t t = 0; t < next.size(); ++t) {
    ASSERT_EQ(back[t].shape(), next[t].shape());
    EXPECT_EQ(back[t].dtype(), next[t].dtype());
    for (std::int64_t j = 0; j < next[t].numel(); ++j)
      EXPECT_EQ(back[t][j], next[t][j]) << "tensor " << t << " elem " << j;
  }

  // A non-fp32 literal keeps its dtype tag across the trip.
  WeightSet half_next;
  for (const Tensor& w : prev) half_next.push_back(w);
  half_next[0].quantize_storage(Dtype::F16);
  std::stringstream hs(std::ios::in | std::ios::out | std::ios::binary);
  write_weight_delta(hs, 7, prev, half_next);
  const WeightSet half_back = read_weight_delta(hs, prev, base);
  EXPECT_EQ(half_back[0].dtype(), Dtype::F16);

  // Shape drift between writer and reader is refused.
  WeightSet skewed = prev;
  skewed.pop_back();
  std::stringstream bs(std::ios::in | std::ios::out | std::ios::binary);
  write_weight_delta(bs, 1, prev, next);
  EXPECT_THROW(read_weight_delta(bs, skewed, base), Error);
}

TEST(WireTest, DeltaModelDownRequiresMatchingBase) {
  Rng rng(79);
  WeightSet prev = random_weight_set(rng, 5);
  while (prev.empty()) prev = random_weight_set(rng, 5);
  WeightSet next;
  for (const Tensor& w : prev) next.push_back(w);
  next[0][0] += 1.0f;
  const std::string spec = ModelSpec::conv(1, 8, 4, 4, {6, 8}).serialize();

  // The exact payload a delta-flagged ModelDown carries:
  // [slot][spec][delta section][rng state].
  std::ostringstream os(std::ios::binary);
  write_pod<std::int32_t>(os, 3);
  write_string(os, spec);
  write_weight_delta(os, 12, prev, next);
  std::array<std::uint64_t, 4> rng_state{};
  for (auto& s : rng_state) s = rng.next_u64();
  os.write(reinterpret_cast<const char*>(rng_state.data()),
           sizeof(rng_state));
  const std::string frame = encode_frame(MsgType::ModelDown, 9, kServerId, 4,
                                         os.str(), kFlagDelta);

  const FabricMessage msg = decode_message(frame, &prev, 12);
  EXPECT_EQ(msg.flags & kFlagDelta, kFlagDelta);
  EXPECT_EQ(msg.delta_base, 12u);
  EXPECT_EQ(msg.task, 3);
  EXPECT_EQ(msg.spec_text, spec);
  EXPECT_EQ(msg.rng_state, rng_state);
  ASSERT_EQ(msg.weights.size(), next.size());
  for (std::size_t t = 0; t < next.size(); ++t)
    for (std::int64_t j = 0; j < next[t].numel(); ++j)
      EXPECT_EQ(msg.weights[t][j], next[t][j]);

  // No previous model, or a previous model at the wrong version, must land
  // in frames_rejected territory — never silently wrong weights.
  EXPECT_THROW(decode_message(frame), Error);
  EXPECT_THROW(decode_message(frame, &prev, 11), Error);
}

TEST(WireTest, BadMagicAndVersionAreRejected) {
  FabricMessage msg;
  msg.type = MsgType::Ack;
  std::string frame = encode_message(msg);
  {
    std::string bad = frame;
    bad[0] = 'X';
    EXPECT_THROW(decode_message(bad), Error);
    EXPECT_THROW(frame_size(bad), Error);
  }
  {
    std::string bad = frame;
    bad[4] = static_cast<char>(0x7f);  // version
    EXPECT_THROW(decode_message(bad), Error);
  }
  {
    std::string bad = frame;
    bad[6] = static_cast<char>(0xee);  // message type
    EXPECT_THROW(decode_message(bad), Error);
  }
}

}  // namespace
}  // namespace fedtrans
