// Property tests for the federation-fabric wire protocol (net/wire.hpp):
// random messages survive encode→decode bit-exactly, and truncated or
// corrupted frames raise Error at the framing layer instead of crashing or
// yielding silently corrupt payloads.

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "model/spec.hpp"
#include "net/wire.hpp"

namespace fedtrans {
namespace {

WeightSet random_weight_set(Rng& rng, int max_tensors = 5) {
  WeightSet ws;
  const int n = rng.uniform_int(0, max_tensors);
  for (int t = 0; t < n; ++t) {
    std::vector<int> shape;
    const int ndim = rng.uniform_int(1, 3);
    for (int d = 0; d < ndim; ++d) shape.push_back(rng.uniform_int(1, 7));
    Tensor w(shape);
    w.randn(rng, 2.0f);
    ws.push_back(std::move(w));
  }
  return ws;
}

FabricMessage random_message(Rng& rng) {
  FabricMessage m;
  m.type = static_cast<MsgType>(rng.uniform_int(1, 5));
  m.round = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
  m.sender = rng.uniform_int(-1, 512);
  m.receiver = rng.uniform_int(-1, 512);
  if (m.type == MsgType::ModelDown || m.type == MsgType::UpdateUp ||
      m.type == MsgType::JoinRound)
    m.task = rng.uniform_int(0, 4096);
  if (m.type == MsgType::ModelDown || m.type == MsgType::UpdateUp)
    m.weights = random_weight_set(rng);
  if (m.type == MsgType::ModelDown) {
    for (auto& s : m.rng_state) s = rng.next_u64();
    // Heterogeneous payloads carry their architecture on the wire (v2);
    // shared-blob broadcasts leave it empty.
    if (rng.uniform_int(0, 1) == 1)
      m.spec_text = ModelSpec::conv(1, 8, 4, 4, {6, 8}).serialize();
  }
  if (m.type == MsgType::UpdateUp) {
    m.avg_loss = rng.uniform(-10.0, 10.0);
    m.num_samples = rng.uniform_int(0, 10000);
    m.macs_used = rng.uniform(0.0, 1e12);
  }
  if (m.type == MsgType::Abort) m.reason = "dropout: client went offline";
  return m;
}

void expect_equal(const FabricMessage& a, const FabricMessage& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.sender, b.sender);
  EXPECT_EQ(a.receiver, b.receiver);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t i = 0; i < a.weights.size(); ++i) {
    ASSERT_EQ(a.weights[i].shape(), b.weights[i].shape());
    for (std::int64_t j = 0; j < a.weights[i].numel(); ++j)
      EXPECT_EQ(a.weights[i][j], b.weights[i][j]) << "tensor " << i;
  }
  EXPECT_EQ(a.task, b.task);
  if (a.type == MsgType::ModelDown) {
    EXPECT_EQ(a.rng_state, b.rng_state);
    EXPECT_EQ(a.spec_text, b.spec_text);
  }
  if (a.type == MsgType::UpdateUp) {
    EXPECT_EQ(a.avg_loss, b.avg_loss);
    EXPECT_EQ(a.num_samples, b.num_samples);
    EXPECT_EQ(a.macs_used, b.macs_used);
  }
  if (a.type == MsgType::Abort) {
    EXPECT_EQ(a.reason, b.reason);
  }
}

TEST(WireTest, RandomMessagesRoundTripBitwise) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const FabricMessage msg = random_message(rng);
    const std::string frame = encode_message(msg);
    EXPECT_EQ(frame_size(frame), frame.size());
    expect_equal(msg, decode_message(frame));
  }
}

TEST(WireTest, WeightSetCodecRoundTripsBitwise) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const WeightSet ws = random_weight_set(rng, 8);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_weight_set(ss, ws);
    const WeightSet back = read_weight_set(ss);
    ASSERT_EQ(ws.size(), back.size());
    for (std::size_t i = 0; i < ws.size(); ++i) {
      ASSERT_EQ(ws[i].shape(), back[i].shape());
      for (std::int64_t j = 0; j < ws[i].numel(); ++j)
        EXPECT_EQ(ws[i][j], back[i][j]);
    }
  }
}

TEST(WireTest, EveryTruncationFailsCleanly) {
  Rng rng(99);
  const FabricMessage msg = random_message(rng);
  const std::string frame = encode_message(msg);
  // Chop the frame at a spread of lengths (every prefix for short frames);
  // each must throw Error — never crash, never decode.
  const std::size_t step = std::max<std::size_t>(1, frame.size() / 97);
  for (std::size_t cut = 0; cut < frame.size(); cut += step)
    EXPECT_THROW(decode_message(frame.substr(0, cut)), Error)
        << "truncated at " << cut << "/" << frame.size();
}

TEST(WireTest, SingleByteCorruptionIsDetected) {
  Rng rng(123);
  FabricMessage msg;
  msg.type = MsgType::UpdateUp;
  msg.round = 3;
  msg.sender = 5;
  msg.receiver = kServerId;
  msg.weights = random_weight_set(rng, 4);
  msg.avg_loss = 1.25;
  msg.num_samples = 64;
  const std::string frame = encode_message(msg);

  // Flip one byte at a spread of positions. Header corruption trips the
  // magic/version/type/length checks; payload corruption trips the
  // checksum. Either way decode_message must throw, not return garbage.
  const std::size_t step = std::max<std::size_t>(1, frame.size() / 61);
  for (std::size_t pos = 0; pos < frame.size(); pos += step) {
    std::string bad = frame;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_THROW(decode_message(bad), Error) << "corrupt byte " << pos;
  }
}

TEST(WireTest, TrailingGarbageIsRejected) {
  FabricMessage msg;
  msg.type = MsgType::JoinRound;
  msg.round = 1;
  std::string frame = encode_message(msg);
  frame += "xx";
  EXPECT_THROW(decode_message(frame), Error);
}

TEST(WireTest, FrameSizeSplitsConcatenatedFrames) {
  Rng rng(5);
  const FabricMessage a = random_message(rng);
  const FabricMessage b = random_message(rng);
  const std::string fa = encode_message(a);
  const std::string fb = encode_message(b);
  const std::string stream = fa + fb;
  const std::size_t split = frame_size(stream);
  ASSERT_EQ(split, fa.size());
  expect_equal(a, decode_message(std::string_view(stream).substr(0, split)));
  expect_equal(b, decode_message(std::string_view(stream).substr(split)));
}

TEST(WireTest, BadMagicAndVersionAreRejected) {
  FabricMessage msg;
  msg.type = MsgType::Ack;
  std::string frame = encode_message(msg);
  {
    std::string bad = frame;
    bad[0] = 'X';
    EXPECT_THROW(decode_message(bad), Error);
    EXPECT_THROW(frame_size(bad), Error);
  }
  {
    std::string bad = frame;
    bad[4] = static_cast<char>(0x7f);  // version
    EXPECT_THROW(decode_message(bad), Error);
  }
  {
    std::string bad = frame;
    bad[6] = static_cast<char>(0xee);  // message type
    EXPECT_THROW(decode_message(bad), Error);
  }
}

}  // namespace
}  // namespace fedtrans
