#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layer.hpp"

namespace fedtrans::testing {

/// Scalarize a layer's output with a fixed random projection and verify the
/// analytic input/parameter gradients against central finite differences.
/// loss(x) = sum(forward(x) * proj).
inline void check_gradients(Layer& layer, const std::vector<int>& in_shape,
                            Rng& rng, double tol = 2e-2, float eps = 1e-2f) {
  Tensor x(in_shape);
  x.randn(rng, 0.8f);

  Tensor out = layer.forward(x, true);
  Tensor proj(out.shape());
  proj.randn(rng, 1.0f);

  // Analytic gradients.
  layer.zero_grad();
  out = layer.forward(x, true);
  Tensor dx = layer.backward(proj);

  auto loss_at = [&](const Tensor& input) {
    Tensor y = layer.forward(input, true);
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i)
      s += static_cast<double>(y[i]) * proj[i];
    return s;
  };

  // Input gradient (subsample indices for speed on big tensors).
  const std::int64_t stride_x = std::max<std::int64_t>(1, x.numel() / 24);
  for (std::int64_t i = 0; i < x.numel(); i += stride_x) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double num = (loss_at(xp) - loss_at(xm)) / (2.0 * eps);
    EXPECT_NEAR(dx[i], num, tol * std::max(1.0, std::fabs(num)))
        << "input grad mismatch at " << i;
  }

  // Parameter gradients.
  for (auto& p : layer.params()) {
    Tensor& w = *p.value;
    Tensor& g = *p.grad;
    const std::int64_t stride_w = std::max<std::int64_t>(1, w.numel() / 24);
    for (std::int64_t i = 0; i < w.numel(); i += stride_w) {
      const float keep = w[i];
      w[i] = keep + eps;
      const double lp = loss_at(x);
      w[i] = keep - eps;
      const double lm = loss_at(x);
      w[i] = keep;
      const double num = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(g[i], num, tol * std::max(1.0, std::fabs(num)))
          << p.name << " grad mismatch at " << i;
    }
  }
}

/// Max absolute difference between two same-shaped tensors.
inline double max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.same_shape(b));
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
  return m;
}

}  // namespace fedtrans::testing
