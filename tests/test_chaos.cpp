// Chaos-scenario sweep: a deterministic harness that drives short FedAvg,
// FedTrans and FedBuff sessions through every combination of
//
//   topology  ∈ {flat, 2-level tree, 3-level tree}
//   fault     ∈ {frame drop (+retries), duplication, reordering, leaf death}
//   seed      ∈ {11, 42}
//
// and asserts *invariants* rather than golden values:
//
//   1. no deadlock — every session terminates with the full round/version
//      history, whatever the fabric loses;
//   2. conservation — every planned task is accounted for, either as a
//      participant or a lost update (participants + lost_updates == tasks);
//   3. byte reconciliation — CostMeter's network bytes equal the strategy's
//      per-update billing plus exactly the transport's retry/failover
//      counters (FedAvg sessions, where the per-update cost is closed-form);
//   4. bitwise determinism — the same scenario replays identically at 1 and
//      4 threads (fault draws are counter-hashed, reductions fixed-order);
//   5. clean decode — the transport never corrupts bytes, so a single
//      rejected frame means a codec bug, chaos or not.
//
// The sweep runs under parallel ctest with a pinned FEDTRANS_THREADS (see
// CMakeLists set_tests_properties), so its timing does not wobble with the
// host load of sibling tests.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/trainer.hpp"
#include "fl/async.hpp"
#include "fl/runner.hpp"
#include "net/server.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

struct TopoCase {
  const char* name;
  int levels;
  int shards;
  int branching;
};

struct FaultCase {
  const char* name;
  FaultConfig faults;
  int max_retries;
};

std::vector<TopoCase> topologies() {
  return {{"flat", 1, 1, 0}, {"two-level", 2, 3, 0}, {"three-level", 3, 4, 2}};
}

std::vector<FaultCase> fault_cases() {
  FaultConfig drop;
  drop.drop_prob = 0.25;
  FaultConfig dup;
  dup.dup_prob = 0.3;
  FaultConfig reorder;
  reorder.reorder_prob = 0.35;
  FaultConfig death;
  death.leaf_death_prob = 0.35;
  // Drops get a retry budget so the sweep exercises the resend path and
  // its billing; the others keep the historical no-retry behavior.
  return {{"drop", drop, 2},
          {"dup", dup, 0},
          {"reorder", reorder, 0},
          {"leaf-death", death, 0}};
}

DatasetConfig chaos_data() {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = 10;
  cfg.mean_train_samples = 14;
  cfg.min_train_samples = 8;
  cfg.eval_samples = 6;
  cfg.noise = 0.35;
  cfg.seed = 17;
  return cfg;
}

std::vector<DeviceProfile> chaos_fleet(int n) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.seed = 9;
  cfg.with_median_capacity(5e6);
  return sample_fleet(cfg);
}

ModelSpec chaos_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

void apply_scenario(FabricTopology& topo, FaultConfig& faults,
                    const TopoCase& t, const FaultCase& f,
                    std::uint64_t seed) {
  topo.levels = t.levels;
  topo.shards = t.shards;
  topo.branching = t.branching;
  topo.max_retries = f.max_retries;
  topo.ack_timeout_s = 5.0;
  faults = f.faults;
  faults.seed = 0x9e3779b9ULL ^ seed;  // decorrelate from the session seed
}

std::string scenario_name(const TopoCase& t, const FaultCase& f,
                          std::uint64_t seed) {
  return std::string(t.name) + " x " + f.name + " x seed " +
         std::to_string(seed);
}

void expect_same_weights(const WeightSet& wa, const WeightSet& wb,
                         const std::string& what) {
  ASSERT_EQ(wa.size(), wb.size()) << what;
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0)
        << what << " tensor " << i;
}

/// Run one FedAvg session; verify termination, conservation and byte
/// reconciliation; return the final weights + history for the determinism
/// comparison.
struct SyncOutcome {
  WeightSet weights;
  std::vector<RoundRecord> history;
  double network_bytes = 0.0;
};

SyncOutcome run_fedavg(const FederatedDataset& data,
                       const std::vector<DeviceProfile>& fleet,
                       const Model& init, const TopoCase& t,
                       const FaultCase& f, std::uint64_t seed) {
  const std::string what = "fedavg " + scenario_name(t, f, seed);
  FlRunConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 5;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.eval_every = 0;
  cfg.seed = seed;
  cfg.use_fabric = true;
  apply_scenario(cfg.topology, cfg.fabric_faults, t, f, seed);

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();  // invariant 1: terminates under every fault mix

  EXPECT_EQ(runner.history().size(), static_cast<std::size_t>(cfg.rounds))
      << what;
  int participants = 0, lost = 0;
  for (const auto& rec : runner.history()) {
    // Invariant 2: conservation — no task vanishes unaccounted.
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round)
        << what << " round " << rec.round;
    EXPECT_GE(rec.leaf_failovers, 0) << what;
    participants += rec.participants;
    lost += rec.lost_updates;
  }

  const FabricStats& stats = runner.fabric()->stats();
  // Invariant 3: byte reconciliation — each aggregated update moved the
  // model down and up, each lost one spent its downlink, and resends /
  // failover redirects are billed exactly as the transport counted them.
  const double model_bytes =
      static_cast<double>(runner.model().param_bytes());
  const double extra =
      static_cast<double>(stats.retry_bytes_down.load()) +
      static_cast<double>(stats.retry_bytes_up.load()) +
      static_cast<double>(stats.failover_bytes_down.load());
  EXPECT_NEAR(runner.costs().network_bytes(),
              model_bytes * (2.0 * participants + lost) + extra, 1.0)
      << what;
  // Invariant 5: chaos drops/duplicates/delays whole frames, never bytes.
  EXPECT_EQ(stats.frames_rejected.load(), 0u) << what;

  SyncOutcome out;
  out.weights = runner.model().weights();
  out.history = runner.history();
  out.network_bytes = runner.costs().network_bytes();
  return out;
}

SyncOutcome run_fedtrans(const FederatedDataset& data,
                         const std::vector<DeviceProfile>& fleet,
                         const TopoCase& t, const FaultCase& f,
                         std::uint64_t seed) {
  const std::string what = "fedtrans " + scenario_name(t, f, seed);
  FedTransConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 4;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.gamma = 2;
  cfg.doc_delta = 2;
  cfg.beta = 10.0;
  cfg.act_window = 2;
  cfg.max_models = 2;
  cfg.seed = seed;
  cfg.use_fabric = true;
  apply_scenario(cfg.topology, cfg.fabric_faults, t, f, seed);

  FedTransTrainer trainer(chaos_model(), data, fleet, cfg);
  trainer.run();

  EXPECT_EQ(trainer.history().size(), static_cast<std::size_t>(cfg.rounds))
      << what;
  for (const auto& rec : trainer.history())
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round)
        << what << " round " << rec.round;
  EXPECT_EQ(trainer.engine().fabric()->stats().frames_rejected.load(), 0u)
      << what;

  SyncOutcome out;
  out.weights = trainer.model(0).weights();
  out.history = trainer.history();
  out.network_bytes = trainer.costs().network_bytes();
  return out;
}

struct AsyncOutcome {
  WeightSet weights;
  std::vector<RoundRecord> history;
  double now_s = 0.0;
};

AsyncOutcome run_fedbuff(const FederatedDataset& data,
                         const std::vector<DeviceProfile>& fleet,
                         const Model& init, const TopoCase& t,
                         const FaultCase& f, std::uint64_t seed) {
  const std::string what = "fedbuff " + scenario_name(t, f, seed);
  AsyncRunConfig cfg;
  cfg.concurrency = 3;
  cfg.buffer_size = 2;
  cfg.aggregations = 4;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.seed = seed;
  cfg.use_fabric = true;
  apply_scenario(cfg.topology, cfg.fabric_faults, t, f, seed);
  cfg.topology.ack_timeout_s = 30.0;  // above the tiny fleet's round trip

  FedBuffRunner runner(init, data, fleet, cfg);
  runner.run();  // invariant 1: ack-timeouts replace lost clients

  EXPECT_EQ(runner.aggregations_done(), cfg.aggregations) << what;
  EXPECT_EQ(runner.history().size(),
            static_cast<std::size_t>(cfg.aggregations))
      << what;
  for (const auto& rec : runner.history())
    EXPECT_GE(rec.lost_updates, 0) << what;
  EXPECT_EQ(runner.engine().fabric()->stats().frames_rejected.load(), 0u)
      << what;
  EXPECT_GT(runner.costs().network_bytes(), 0.0) << what;

  AsyncOutcome out;
  out.weights = runner.model().weights();
  out.history = runner.history();
  out.now_s = runner.now_s();
  return out;
}

void expect_same_history(const std::vector<RoundRecord>& a,
                         const std::vector<RoundRecord>& b,
                         const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].avg_loss, b[r].avg_loss) << what << " round " << r;
    EXPECT_EQ(a[r].round_time_s, b[r].round_time_s) << what << " round " << r;
    EXPECT_EQ(a[r].participants, b[r].participants) << what << " round " << r;
    EXPECT_EQ(a[r].lost_updates, b[r].lost_updates) << what << " round " << r;
    EXPECT_EQ(a[r].leaf_failovers, b[r].leaf_failovers)
        << what << " round " << r;
  }
}

TEST(ChaosSweepTest, FedAvgSurvivesEveryScenarioDeterministically) {
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  Rng rng(3);
  Model init(chaos_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  for (const TopoCase& t : topologies()) {
    for (const FaultCase& f : fault_cases()) {
      for (std::uint64_t seed : {11ULL, 42ULL}) {
        const std::string what = "fedavg " + scenario_name(t, f, seed);
        ThreadPool::set_global_threads(1);
        const SyncOutcome a = run_fedavg(data, fleet, init, t, f, seed);
        ThreadPool::set_global_threads(4);
        const SyncOutcome b = run_fedavg(data, fleet, init, t, f, seed);
        // Invariant 4: bitwise determinism across thread counts.
        expect_same_weights(a.weights, b.weights, what);
        expect_same_history(a.history, b.history, what);
        EXPECT_EQ(a.network_bytes, b.network_bytes) << what;
      }
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(ChaosSweepTest, FedTransSurvivesEveryScenarioDeterministically) {
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();

  for (const TopoCase& t : topologies()) {
    for (const FaultCase& f : fault_cases()) {
      for (std::uint64_t seed : {11ULL, 42ULL}) {
        const std::string what = "fedtrans " + scenario_name(t, f, seed);
        ThreadPool::set_global_threads(1);
        const SyncOutcome a = run_fedtrans(data, fleet, t, f, seed);
        ThreadPool::set_global_threads(4);
        const SyncOutcome b = run_fedtrans(data, fleet, t, f, seed);
        expect_same_weights(a.weights, b.weights, what);
        expect_same_history(a.history, b.history, what);
        EXPECT_EQ(a.network_bytes, b.network_bytes) << what;
      }
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(ChaosSweepTest, FedBuffSurvivesEveryScenarioDeterministically) {
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  Rng rng(3);
  Model init(chaos_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  for (const TopoCase& t : topologies()) {
    for (const FaultCase& f : fault_cases()) {
      for (std::uint64_t seed : {11ULL, 42ULL}) {
        const std::string what = "fedbuff " + scenario_name(t, f, seed);
        ThreadPool::set_global_threads(1);
        const AsyncOutcome a = run_fedbuff(data, fleet, init, t, f, seed);
        ThreadPool::set_global_threads(4);
        const AsyncOutcome b = run_fedbuff(data, fleet, init, t, f, seed);
        expect_same_weights(a.weights, b.weights, what);
        expect_same_history(a.history, b.history, what);
        EXPECT_EQ(a.now_s, b.now_s) << what;
      }
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(ChaosSweepTest, CombinedFaultsOnDeepTreeStillConserveAndTerminate) {
  // Everything at once — drops with retries, duplicates, reordering, leaf
  // death, client dropout — over the 3-level tree, numeric mode on: the
  // harshest corner of the sweep still terminates, conserves tasks and
  // reconciles its bytes.
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  Rng rng(3);
  Model init(chaos_model(), rng);

  FlRunConfig cfg;
  cfg.rounds = 4;
  cfg.clients_per_round = 6;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.eval_every = 0;
  cfg.seed = 5;
  cfg.use_fabric = true;
  cfg.topology.levels = 3;
  cfg.topology.shards = 4;
  cfg.topology.branching = 2;
  cfg.topology.partial_aggregation = true;
  cfg.topology.max_retries = 1;
  cfg.topology.ack_timeout_s = 5.0;
  cfg.fabric_faults.drop_prob = 0.15;
  cfg.fabric_faults.dup_prob = 0.1;
  cfg.fabric_faults.reorder_prob = 0.15;
  cfg.fabric_faults.dropout_prob = 0.1;
  cfg.fabric_faults.leaf_death_prob = 0.2;
  cfg.fabric_faults.seed = 4242;

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();

  ASSERT_EQ(runner.history().size(), 4u);
  int participants = 0, lost = 0;
  for (const auto& rec : runner.history()) {
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round);
    participants += rec.participants;
    lost += rec.lost_updates;
  }
  EXPECT_GT(participants, 0) << "some updates must still get through";
  const FabricStats& stats = runner.fabric()->stats();
  const double model_bytes =
      static_cast<double>(runner.model().param_bytes());
  const double extra =
      static_cast<double>(stats.retry_bytes_down.load()) +
      static_cast<double>(stats.retry_bytes_up.load()) +
      static_cast<double>(stats.failover_bytes_down.load());
  EXPECT_NEAR(runner.costs().network_bytes(),
              model_bytes * (2.0 * participants + lost) + extra, 1.0);
  EXPECT_EQ(stats.frames_rejected.load(), 0u);

  FedAvgRunner again(init, data, fleet, cfg);
  again.run();
  expect_same_weights(runner.model().weights(), again.model().weights(),
                      "combined chaos replay");
  expect_same_history(runner.history(), again.history(), "combined chaos");
}

}  // namespace
}  // namespace fedtrans
