// Chaos-scenario sweep: a deterministic harness that drives short FedAvg,
// FedTrans and FedBuff sessions through every combination of
//
//   topology  ∈ {flat, 2-level tree, 3-level tree}
//   fault     ∈ {frame drop (+retries), duplication, reordering, leaf death}
//   seed      ∈ {11, 42}
//
// plus a Byzantine adversarial sweep — the same invariant harness driven by
// hostile *clients* instead of a hostile wire:
//
//   strategy  ∈ {FedAvg, FedTrans, robust-median, trimmed-mean, norm-clip}
//   attack    ∈ {honest, {sign-flip, scaled-update, label-flip} × {10%, 30%}}
//               (+ utility-inflation against FedTrans's task assignment)
//   topology  ∈ {flat, 3-level tree}
//   seed      ∈ {11, 42}
//
// and asserts *invariants* rather than golden values:
//
//   1. no deadlock — every session terminates with the full round/version
//      history, whatever the fabric loses;
//   2. conservation — every planned task is accounted for, either as a
//      participant or a lost update (participants + lost_updates == tasks);
//   3. byte reconciliation — CostMeter's network bytes equal the strategy's
//      per-update billing plus exactly the transport's retry/failover
//      counters (FedAvg sessions, where the per-update cost is closed-form);
//   4. bitwise determinism — the same scenario replays identically at 1 and
//      4 threads (fault draws are counter-hashed, reductions fixed-order);
//   5. clean decode — the transport never corrupts bytes, so a single
//      rejected frame means a codec bug, chaos or not.
//
// The sweep runs under parallel ctest with a pinned FEDTRANS_THREADS (see
// CMakeLists set_tests_properties), so its timing does not wobble with the
// host load of sibling tests.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/robust.hpp"
#include "common/thread_pool.hpp"
#include "core/trainer.hpp"
#include "fl/async.hpp"
#include "fl/runner.hpp"
#include "net/server.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

struct TopoCase {
  const char* name;
  int levels;
  int shards;
  int branching;
};

struct FaultCase {
  const char* name;
  FaultConfig faults;
  int max_retries;
};

std::vector<TopoCase> topologies() {
  return {{"flat", 1, 1, 0}, {"two-level", 2, 3, 0}, {"three-level", 3, 4, 2}};
}

std::vector<FaultCase> fault_cases() {
  FaultConfig drop;
  drop.drop_prob = 0.25;
  FaultConfig dup;
  dup.dup_prob = 0.3;
  FaultConfig reorder;
  reorder.reorder_prob = 0.35;
  FaultConfig death;
  death.leaf_death_prob = 0.35;
  // Drops get a retry budget so the sweep exercises the resend path and
  // its billing; the others keep the historical no-retry behavior.
  return {{"drop", drop, 2},
          {"dup", dup, 0},
          {"reorder", reorder, 0},
          {"leaf-death", death, 0}};
}

DatasetConfig chaos_data() {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = 10;
  cfg.mean_train_samples = 14;
  cfg.min_train_samples = 8;
  cfg.eval_samples = 6;
  cfg.noise = 0.35;
  cfg.seed = 17;
  return cfg;
}

std::vector<DeviceProfile> chaos_fleet(int n) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.seed = 9;
  cfg.with_median_capacity(5e6);
  return sample_fleet(cfg);
}

ModelSpec chaos_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

void apply_scenario(FabricTopology& topo, FaultConfig& faults,
                    const TopoCase& t, const FaultCase& f,
                    std::uint64_t seed) {
  topo.levels = t.levels;
  topo.shards = t.shards;
  topo.branching = t.branching;
  topo.max_retries = f.max_retries;
  topo.ack_timeout_s = 5.0;
  faults = f.faults;
  faults.seed = 0x9e3779b9ULL ^ seed;  // decorrelate from the session seed
}

std::string scenario_name(const TopoCase& t, const FaultCase& f,
                          std::uint64_t seed) {
  return std::string(t.name) + " x " + f.name + " x seed " +
         std::to_string(seed);
}

void expect_same_weights(const WeightSet& wa, const WeightSet& wb,
                         const std::string& what) {
  ASSERT_EQ(wa.size(), wb.size()) << what;
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0)
        << what << " tensor " << i;
}

/// Run one FedAvg session; verify termination, conservation and byte
/// reconciliation; return the final weights + history for the determinism
/// comparison.
struct SyncOutcome {
  WeightSet weights;
  std::vector<RoundRecord> history;
  double network_bytes = 0.0;
};

SyncOutcome run_fedavg(const FederatedDataset& data,
                       const std::vector<DeviceProfile>& fleet,
                       const Model& init, const TopoCase& t,
                       const FaultCase& f, std::uint64_t seed) {
  const std::string what = "fedavg " + scenario_name(t, f, seed);
  FlRunConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 5;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.eval_every = 0;
  cfg.seed = seed;
  cfg.use_fabric = true;
  apply_scenario(cfg.topology, cfg.fabric_faults, t, f, seed);

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();  // invariant 1: terminates under every fault mix

  EXPECT_EQ(runner.history().size(), static_cast<std::size_t>(cfg.rounds))
      << what;
  int participants = 0, lost = 0;
  for (const auto& rec : runner.history()) {
    // Invariant 2: conservation — no task vanishes unaccounted.
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round)
        << what << " round " << rec.round;
    EXPECT_GE(rec.leaf_failovers, 0) << what;
    participants += rec.participants;
    lost += rec.lost_updates;
  }

  const FabricStats& stats = runner.fabric()->stats();
  // Invariant 3: byte reconciliation — each aggregated update moved the
  // model down and up, each lost one spent its downlink, and resends /
  // failover redirects are billed exactly as the transport counted them.
  const double model_bytes =
      static_cast<double>(runner.model().param_bytes());
  const double extra =
      static_cast<double>(stats.retry_bytes_down.load()) +
      static_cast<double>(stats.retry_bytes_up.load()) +
      static_cast<double>(stats.failover_bytes_down.load());
  EXPECT_NEAR(runner.costs().network_bytes(),
              model_bytes * (2.0 * participants + lost) + extra, 1.0)
      << what;
  // Invariant 5: chaos drops/duplicates/delays whole frames, never bytes.
  EXPECT_EQ(stats.frames_rejected.load(), 0u) << what;

  SyncOutcome out;
  out.weights = runner.model().weights();
  out.history = runner.history();
  out.network_bytes = runner.costs().network_bytes();
  return out;
}

SyncOutcome run_fedtrans(const FederatedDataset& data,
                         const std::vector<DeviceProfile>& fleet,
                         const TopoCase& t, const FaultCase& f,
                         std::uint64_t seed) {
  const std::string what = "fedtrans " + scenario_name(t, f, seed);
  FedTransConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 4;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.gamma = 2;
  cfg.doc_delta = 2;
  cfg.beta = 10.0;
  cfg.act_window = 2;
  cfg.max_models = 2;
  cfg.seed = seed;
  cfg.use_fabric = true;
  apply_scenario(cfg.topology, cfg.fabric_faults, t, f, seed);

  FedTransTrainer trainer(chaos_model(), data, fleet, cfg);
  trainer.run();

  EXPECT_EQ(trainer.history().size(), static_cast<std::size_t>(cfg.rounds))
      << what;
  for (const auto& rec : trainer.history())
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round)
        << what << " round " << rec.round;
  EXPECT_EQ(trainer.engine().fabric()->stats().frames_rejected.load(), 0u)
      << what;

  SyncOutcome out;
  out.weights = trainer.model(0).weights();
  out.history = trainer.history();
  out.network_bytes = trainer.costs().network_bytes();
  return out;
}

struct AsyncOutcome {
  WeightSet weights;
  std::vector<RoundRecord> history;
  double now_s = 0.0;
};

AsyncOutcome run_fedbuff(const FederatedDataset& data,
                         const std::vector<DeviceProfile>& fleet,
                         const Model& init, const TopoCase& t,
                         const FaultCase& f, std::uint64_t seed) {
  const std::string what = "fedbuff " + scenario_name(t, f, seed);
  AsyncRunConfig cfg;
  cfg.concurrency = 3;
  cfg.buffer_size = 2;
  cfg.aggregations = 4;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.seed = seed;
  cfg.use_fabric = true;
  apply_scenario(cfg.topology, cfg.fabric_faults, t, f, seed);
  cfg.topology.ack_timeout_s = 30.0;  // above the tiny fleet's round trip

  FedBuffRunner runner(init, data, fleet, cfg);
  runner.run();  // invariant 1: ack-timeouts replace lost clients

  EXPECT_EQ(runner.aggregations_done(), cfg.aggregations) << what;
  EXPECT_EQ(runner.history().size(),
            static_cast<std::size_t>(cfg.aggregations))
      << what;
  for (const auto& rec : runner.history())
    EXPECT_GE(rec.lost_updates, 0) << what;
  EXPECT_EQ(runner.engine().fabric()->stats().frames_rejected.load(), 0u)
      << what;
  EXPECT_GT(runner.costs().network_bytes(), 0.0) << what;

  AsyncOutcome out;
  out.weights = runner.model().weights();
  out.history = runner.history();
  out.now_s = runner.now_s();
  return out;
}

void expect_same_history(const std::vector<RoundRecord>& a,
                         const std::vector<RoundRecord>& b,
                         const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].avg_loss, b[r].avg_loss) << what << " round " << r;
    EXPECT_EQ(a[r].round_time_s, b[r].round_time_s) << what << " round " << r;
    EXPECT_EQ(a[r].participants, b[r].participants) << what << " round " << r;
    EXPECT_EQ(a[r].lost_updates, b[r].lost_updates) << what << " round " << r;
    EXPECT_EQ(a[r].leaf_failovers, b[r].leaf_failovers)
        << what << " round " << r;
    EXPECT_EQ(a[r].byzantine_updates, b[r].byzantine_updates)
        << what << " round " << r;
    EXPECT_EQ(a[r].byzantine_clients, b[r].byzantine_clients)
        << what << " round " << r;
    EXPECT_EQ(a[r].byzantine_l2, b[r].byzantine_l2) << what << " round " << r;
  }
}

TEST(ChaosSweepTest, FedAvgSurvivesEveryScenarioDeterministically) {
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  Rng rng(3);
  Model init(chaos_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  for (const TopoCase& t : topologies()) {
    for (const FaultCase& f : fault_cases()) {
      for (std::uint64_t seed : {11ULL, 42ULL}) {
        const std::string what = "fedavg " + scenario_name(t, f, seed);
        ThreadPool::set_global_threads(1);
        const SyncOutcome a = run_fedavg(data, fleet, init, t, f, seed);
        ThreadPool::set_global_threads(4);
        const SyncOutcome b = run_fedavg(data, fleet, init, t, f, seed);
        // Invariant 4: bitwise determinism across thread counts.
        expect_same_weights(a.weights, b.weights, what);
        expect_same_history(a.history, b.history, what);
        EXPECT_EQ(a.network_bytes, b.network_bytes) << what;
      }
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(ChaosSweepTest, FedTransSurvivesEveryScenarioDeterministically) {
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();

  for (const TopoCase& t : topologies()) {
    for (const FaultCase& f : fault_cases()) {
      for (std::uint64_t seed : {11ULL, 42ULL}) {
        const std::string what = "fedtrans " + scenario_name(t, f, seed);
        ThreadPool::set_global_threads(1);
        const SyncOutcome a = run_fedtrans(data, fleet, t, f, seed);
        ThreadPool::set_global_threads(4);
        const SyncOutcome b = run_fedtrans(data, fleet, t, f, seed);
        expect_same_weights(a.weights, b.weights, what);
        expect_same_history(a.history, b.history, what);
        EXPECT_EQ(a.network_bytes, b.network_bytes) << what;
      }
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(ChaosSweepTest, FedBuffSurvivesEveryScenarioDeterministically) {
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  Rng rng(3);
  Model init(chaos_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  for (const TopoCase& t : topologies()) {
    for (const FaultCase& f : fault_cases()) {
      for (std::uint64_t seed : {11ULL, 42ULL}) {
        const std::string what = "fedbuff " + scenario_name(t, f, seed);
        ThreadPool::set_global_threads(1);
        const AsyncOutcome a = run_fedbuff(data, fleet, init, t, f, seed);
        ThreadPool::set_global_threads(4);
        const AsyncOutcome b = run_fedbuff(data, fleet, init, t, f, seed);
        expect_same_weights(a.weights, b.weights, what);
        expect_same_history(a.history, b.history, what);
        EXPECT_EQ(a.now_s, b.now_s) << what;
      }
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(ChaosSweepTest, CombinedFaultsOnDeepTreeStillConserveAndTerminate) {
  // Everything at once — drops with retries, duplicates, reordering, leaf
  // death, client dropout — over the 3-level tree, numeric mode on: the
  // harshest corner of the sweep still terminates, conserves tasks and
  // reconciles its bytes.
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  Rng rng(3);
  Model init(chaos_model(), rng);

  FlRunConfig cfg;
  cfg.rounds = 4;
  cfg.clients_per_round = 6;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.eval_every = 0;
  cfg.seed = 5;
  cfg.use_fabric = true;
  cfg.topology.levels = 3;
  cfg.topology.shards = 4;
  cfg.topology.branching = 2;
  cfg.topology.partial_aggregation = true;
  cfg.topology.max_retries = 1;
  cfg.topology.ack_timeout_s = 5.0;
  cfg.fabric_faults.drop_prob = 0.15;
  cfg.fabric_faults.dup_prob = 0.1;
  cfg.fabric_faults.reorder_prob = 0.15;
  cfg.fabric_faults.dropout_prob = 0.1;
  cfg.fabric_faults.leaf_death_prob = 0.2;
  cfg.fabric_faults.seed = 4242;

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();

  ASSERT_EQ(runner.history().size(), 4u);
  int participants = 0, lost = 0;
  for (const auto& rec : runner.history()) {
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round);
    participants += rec.participants;
    lost += rec.lost_updates;
  }
  EXPECT_GT(participants, 0) << "some updates must still get through";
  const FabricStats& stats = runner.fabric()->stats();
  const double model_bytes =
      static_cast<double>(runner.model().param_bytes());
  const double extra =
      static_cast<double>(stats.retry_bytes_down.load()) +
      static_cast<double>(stats.retry_bytes_up.load()) +
      static_cast<double>(stats.failover_bytes_down.load());
  EXPECT_NEAR(runner.costs().network_bytes(),
              model_bytes * (2.0 * participants + lost) + extra, 1.0);
  EXPECT_EQ(stats.frames_rejected.load(), 0u);

  FedAvgRunner again(init, data, fleet, cfg);
  again.run();
  expect_same_weights(runner.model().weights(), again.model().weights(),
                      "combined chaos replay");
  expect_same_history(runner.history(), again.history(), "combined chaos");
}

// ---------------------------------------------------------------------------
// Wire v6 bandwidth-reducer legs: the same invariant harness with quantized
// tree partials, interior broadcast caches and delta downlinks switched on
// (separately and together) under every fault mix. The standing invariants
// are unchanged except byte reconciliation, which gains the delta credit:
// delta ModelDowns ship fewer bytes than the full payload the strategy
// billed, and the engine credits exactly the transport's counter back.

struct FeatureCase {
  const char* name;
  PartialQuant quant;
  bool cache;
  bool delta;
};

std::vector<FeatureCase> feature_cases() {
  return {{"quant-int8", PartialQuant::Int8, false, false},
          {"cache", PartialQuant::None, true, false},
          {"delta", PartialQuant::None, false, true},
          {"all-on", PartialQuant::Int8, true, true}};
}

SyncOutcome run_fedavg_v6(const FederatedDataset& data,
                          const std::vector<DeviceProfile>& fleet,
                          const Model& init, const TopoCase& t,
                          const FaultCase& f, const FeatureCase& v,
                          std::uint64_t seed) {
  const std::string what =
      "fedavg-v6 " + std::string(v.name) + " " + scenario_name(t, f, seed);
  FlRunConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 5;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.eval_every = 0;
  cfg.seed = seed;
  cfg.use_fabric = true;
  apply_scenario(cfg.topology, cfg.fabric_faults, t, f, seed);
  cfg.topology.quantize_partials = v.quant;
  cfg.topology.partial_aggregation = v.quant != PartialQuant::None;
  cfg.topology.broadcast_cache = v.cache;
  cfg.topology.delta_downlink = v.delta;

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();  // invariant 1: terminates under every fault mix

  EXPECT_EQ(runner.history().size(), static_cast<std::size_t>(cfg.rounds))
      << what;
  int participants = 0, lost = 0;
  for (const auto& rec : runner.history()) {
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round)
        << what << " round " << rec.round;  // invariant 2: conservation
    participants += rec.participants;
    lost += rec.lost_updates;
  }

  const FabricStats& stats = runner.fabric()->stats();
  // Invariant 3, v6 form: per-update billing + resend/failover traffic
  // − the delta-downlink credit. Cache elision never enters CostMeter —
  // it only trims the free backbone — so no cache term appears.
  const double model_bytes =
      static_cast<double>(runner.model().param_bytes());
  const double extra =
      static_cast<double>(stats.retry_bytes_down.load()) +
      static_cast<double>(stats.retry_bytes_up.load()) +
      static_cast<double>(stats.failover_bytes_down.load()) -
      static_cast<double>(stats.delta_saved_bytes.load());
  EXPECT_NEAR(runner.costs().network_bytes(),
              model_bytes * (2.0 * participants + lost) + extra, 1.0)
      << what;
  EXPECT_EQ(stats.frames_rejected.load(), 0u) << what;  // invariant 5

  SyncOutcome out;
  out.weights = runner.model().weights();
  out.history = runner.history();
  out.network_bytes = runner.costs().network_bytes();
  return out;
}

TEST(ChaosSweepTest, BandwidthReducersSurviveEveryScenarioDeterministically) {
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  Rng rng(3);
  Model init(chaos_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  for (const FeatureCase& v : feature_cases()) {
    for (const TopoCase& t : topologies()) {
      // The reducers are tree machinery (quantized partials and broadcast
      // caches need aggregators); delta downlinks also run flat, which the
      // flat case covers for the delta-bearing features.
      if (t.levels < 2 && (v.quant != PartialQuant::None || v.cache)) continue;
      for (const FaultCase& f : fault_cases()) {
        for (std::uint64_t seed : {11ULL, 42ULL}) {
          const std::string what = "fedavg-v6 " + std::string(v.name) + " " +
                                   scenario_name(t, f, seed);
          ThreadPool::set_global_threads(1);
          const SyncOutcome a =
              run_fedavg_v6(data, fleet, init, t, f, v, seed);
          ThreadPool::set_global_threads(4);
          const SyncOutcome b =
              run_fedavg_v6(data, fleet, init, t, f, v, seed);
          // Invariant 4: bitwise determinism across thread counts.
          expect_same_weights(a.weights, b.weights, what);
          expect_same_history(a.history, b.history, what);
          EXPECT_EQ(a.network_bytes, b.network_bytes) << what;
        }
      }
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

// ---------------------------------------------------------------------------
// Byzantine adversarial sweep. The wire is honest here — the *clients*
// misbehave — so the standing invariants (termination, conservation, byte
// reconciliation, clean decode, 1-vs-4-thread bitwise determinism) must
// hold with attackers in the round, and the per-round Byzantine accounting
// must name exactly the counter-hashed (seed, round, client) draw.

struct ByzCase {
  const char* name;
  double prob;
  ByzantineMode mode;
};

std::vector<ByzCase> byzantine_cases() {
  return {{"honest", 0.0, ByzantineMode::None},
          {"sign-flip-10", 0.1, ByzantineMode::SignFlip},
          {"sign-flip-30", 0.3, ByzantineMode::SignFlip},
          {"scaled-10", 0.1, ByzantineMode::ScaledUpdate},
          {"scaled-30", 0.3, ByzantineMode::ScaledUpdate},
          {"label-flip-10", 0.1, ByzantineMode::LabelFlip},
          {"label-flip-30", 0.3, ByzantineMode::LabelFlip}};
}

/// flat + the deepest tree: the Byzantine draw is keyed on (seed, round,
/// client), so topology must not change who attacks or what they send.
std::vector<TopoCase> byzantine_topologies() {
  return {{"flat", 1, 1, 0}, {"three-level", 3, 4, 2}};
}

void apply_byzantine(FaultConfig& faults, const ByzCase& b,
                     std::uint64_t seed) {
  faults.byzantine_prob = b.prob;
  faults.byzantine_mode = b.mode;
  faults.byzantine_lambda = 10.0;
  faults.seed = 0x9e3779b9ULL ^ seed;
}

std::string byz_scenario_name(const char* strategy, const TopoCase& t,
                              const ByzCase& b, std::uint64_t seed) {
  return std::string(strategy) + " " + t.name + " x " + b.name + " x seed " +
         std::to_string(seed);
}

/// Byzantine bookkeeping invariants shared by every strategy in the sweep:
/// the record's attacker set re-derives from the pure draw, honest rounds
/// stay clean, and the 30% scenarios (deterministically) land attacks.
void check_byzantine_accounting(const std::vector<RoundRecord>& history,
                                const FaultConfig& faults, const ByzCase& b,
                                const std::string& what) {
  int total_byz = 0;
  for (const auto& rec : history) {
    EXPECT_GE(rec.byzantine_updates, 0) << what;
    EXPECT_LE(rec.byzantine_updates, rec.participants) << what;
    EXPECT_EQ(static_cast<int>(rec.byzantine_clients.size()),
              rec.byzantine_updates)
        << what;
    for (std::int32_t c : rec.byzantine_clients)
      EXPECT_TRUE(byzantine_client(
          faults, static_cast<std::uint32_t>(rec.round), c))
          << what << " round " << rec.round << " client " << c;
    total_byz += rec.byzantine_updates;
  }
  if (b.prob == 0.0) {
    EXPECT_EQ(total_byz, 0) << what;
  } else if (b.prob >= 0.3) {
    // Counter-hashed draws are fixed per (seed, round, client): at 30%
    // over every (round, client) pair the sweep visits, some attack lands.
    EXPECT_GT(total_byz, 0) << what;
  }
}

SyncOutcome run_fedavg_byzantine(const FederatedDataset& data,
                                 const std::vector<DeviceProfile>& fleet,
                                 const Model& init, const TopoCase& t,
                                 const ByzCase& b, std::uint64_t seed) {
  const std::string what = byz_scenario_name("fedavg", t, b, seed);
  FlRunConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 5;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.eval_every = 0;
  cfg.seed = seed;
  cfg.use_fabric = true;
  cfg.topology.levels = t.levels;
  cfg.topology.shards = t.shards;
  cfg.topology.branching = t.branching;
  apply_byzantine(cfg.fabric_faults, b, seed);

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();

  EXPECT_EQ(runner.history().size(), static_cast<std::size_t>(cfg.rounds))
      << what;
  int participants = 0, lost = 0;
  for (const auto& rec : runner.history()) {
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round)
        << what << " round " << rec.round;
    participants += rec.participants;
    lost += rec.lost_updates;
  }
  check_byzantine_accounting(runner.history(), cfg.fabric_faults, b, what);
  // Attackers move the same bytes as honest clients — the reconciliation
  // is unchanged, and an honest wire never rejects a frame.
  const double model_bytes =
      static_cast<double>(runner.model().param_bytes());
  EXPECT_NEAR(runner.costs().network_bytes(),
              model_bytes * (2.0 * participants + lost), 1.0)
      << what;
  EXPECT_EQ(runner.fabric()->stats().frames_rejected.load(), 0u) << what;

  SyncOutcome out;
  out.weights = runner.model().weights();
  out.history = runner.history();
  out.network_bytes = runner.costs().network_bytes();
  return out;
}

SyncOutcome run_fedtrans_byzantine(const FederatedDataset& data,
                                   const std::vector<DeviceProfile>& fleet,
                                   const TopoCase& t, const ByzCase& b,
                                   std::uint64_t seed) {
  const std::string what = byz_scenario_name("fedtrans", t, b, seed);
  FedTransConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 4;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.gamma = 2;
  cfg.doc_delta = 2;
  cfg.beta = 10.0;
  cfg.act_window = 2;
  cfg.max_models = 2;
  cfg.seed = seed;
  cfg.use_fabric = true;
  cfg.topology.levels = t.levels;
  cfg.topology.shards = t.shards;
  cfg.topology.branching = t.branching;
  apply_byzantine(cfg.fabric_faults, b, seed);

  FedTransTrainer trainer(chaos_model(), data, fleet, cfg);
  trainer.run();

  EXPECT_EQ(trainer.history().size(), static_cast<std::size_t>(cfg.rounds))
      << what;
  for (const auto& rec : trainer.history())
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round)
        << what << " round " << rec.round;
  check_byzantine_accounting(trainer.history(), cfg.fabric_faults, b, what);
  EXPECT_EQ(trainer.engine().fabric()->stats().frames_rejected.load(), 0u)
      << what;

  SyncOutcome out;
  out.weights = trainer.model(0).weights();
  out.history = trainer.history();
  out.network_bytes = trainer.costs().network_bytes();
  return out;
}

SyncOutcome run_robust_byzantine(const FederatedDataset& data,
                                 const std::vector<DeviceProfile>& fleet,
                                 const Model& init, RobustAggregator agg,
                                 const TopoCase& t, const ByzCase& b,
                                 std::uint64_t seed) {
  LocalTrainConfig local;
  local.steps = 2;
  local.batch = 4;
  SessionConfig cfg = SessionConfig{}
                          .with_rounds(3)
                          .with_clients_per_round(5)
                          .with_local(local)
                          .with_seed(seed)
                          .with_robust_aggregation(agg)
                          .with_tree(t.levels, t.shards, t.branching);
  apply_byzantine(cfg.fabric_faults, b, seed);

  FederationEngine engine(std::make_unique<RobustStrategy>(init), data,
                          fleet, cfg);
  const std::string what =
      byz_scenario_name(engine.strategy().name().c_str(), t, b, seed);
  engine.run();

  EXPECT_EQ(engine.history().size(), static_cast<std::size_t>(cfg.rounds))
      << what;
  int participants = 0, lost = 0;
  for (const auto& rec : engine.history()) {
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round)
        << what << " round " << rec.round;
    participants += rec.participants;
    lost += rec.lost_updates;
  }
  check_byzantine_accounting(engine.history(), cfg.fabric_faults, b, what);
  const double model_bytes = static_cast<double>(
      engine.strategy_as<RobustStrategy>().model().param_bytes());
  EXPECT_NEAR(engine.costs().network_bytes(),
              model_bytes * (2.0 * participants + lost), 1.0)
      << what;
  EXPECT_EQ(engine.fabric()->transport().stats().frames_rejected.load(), 0u)
      << what;

  SyncOutcome out;
  out.weights = engine.strategy_as<RobustStrategy>().model().weights();
  out.history = engine.history();
  out.network_bytes = engine.costs().network_bytes();
  return out;
}

TEST(ByzantineSweepTest, FedAvgSurvivesEveryAttackDeterministically) {
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  Rng rng(3);
  Model init(chaos_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  for (const TopoCase& t : byzantine_topologies()) {
    for (const ByzCase& b : byzantine_cases()) {
      for (std::uint64_t seed : {11ULL, 42ULL}) {
        const std::string what = byz_scenario_name("fedavg", t, b, seed);
        ThreadPool::set_global_threads(1);
        const SyncOutcome a =
            run_fedavg_byzantine(data, fleet, init, t, b, seed);
        ThreadPool::set_global_threads(4);
        const SyncOutcome c =
            run_fedavg_byzantine(data, fleet, init, t, b, seed);
        expect_same_weights(a.weights, c.weights, what);
        expect_same_history(a.history, c.history, what);
        EXPECT_EQ(a.network_bytes, c.network_bytes) << what;
      }
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(ByzantineSweepTest, FedTransSurvivesEveryAttackDeterministically) {
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();

  // FedTrans additionally faces the utility-inflation attack aimed at its
  // prepare_task assignment loop.
  auto cases = byzantine_cases();
  cases.push_back({"utility-inflate-10", 0.1, ByzantineMode::UtilityInflate});
  cases.push_back({"utility-inflate-30", 0.3, ByzantineMode::UtilityInflate});

  for (const TopoCase& t : byzantine_topologies()) {
    for (const ByzCase& b : cases) {
      for (std::uint64_t seed : {11ULL, 42ULL}) {
        const std::string what = byz_scenario_name("fedtrans", t, b, seed);
        ThreadPool::set_global_threads(1);
        const SyncOutcome a = run_fedtrans_byzantine(data, fleet, t, b, seed);
        ThreadPool::set_global_threads(4);
        const SyncOutcome c = run_fedtrans_byzantine(data, fleet, t, b, seed);
        expect_same_weights(a.weights, c.weights, what);
        expect_same_history(a.history, c.history, what);
        EXPECT_EQ(a.network_bytes, c.network_bytes) << what;
      }
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(ByzantineSweepTest, RobustStrategiesSurviveEveryAttackDeterministically) {
  auto data = FederatedDataset::generate(chaos_data());
  auto fleet = chaos_fleet(data.num_clients());
  Rng rng(3);
  Model init(chaos_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  const auto aggregators = std::vector<RobustAggregator>{
      RobustAggregator::CoordinateMedian, RobustAggregator::TrimmedMean,
      RobustAggregator::NormClip};
  for (RobustAggregator agg : aggregators) {
    for (const TopoCase& t : byzantine_topologies()) {
      for (const ByzCase& b : byzantine_cases()) {
        for (std::uint64_t seed : {11ULL, 42ULL}) {
          const std::string what = byz_scenario_name("robust", t, b, seed);
          ThreadPool::set_global_threads(1);
          const SyncOutcome a =
              run_robust_byzantine(data, fleet, init, agg, t, b, seed);
          ThreadPool::set_global_threads(4);
          const SyncOutcome c =
              run_robust_byzantine(data, fleet, init, agg, t, b, seed);
          expect_same_weights(a.weights, c.weights, what);
          expect_same_history(a.history, c.history, what);
          EXPECT_EQ(a.network_bytes, c.network_bytes) << what;
        }
      }
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

// ---------------------------------------------------------------------------
// The headline robustness claim, asserted end to end: under 30% sign-flip
// Byzantine clients, mean aggregation (FedAvg) settles measurably below its
// honest accuracy while every robust reducer climbs back to within 5% of
// its own honest level — and beats the attacked FedAvg outright.
//
// The scenario needs honest updates that *cluster*: robust statistics only
// separate attackers from honest clients when the honest per-coordinate
// spread is smaller than the attack displacement, so this test uses a
// lower-noise, larger-sample dataset than the chaos sweep (with the sweep's
// dataset the honest deltas are so heterogeneous that trimming mostly
// removes signal). 9 clients per round keeps the median an odd-count order
// statistic, and the asserts read the settled tail of the learning curve —
// mean of the last kTail evals for "where did it converge", best-of-tail
// for "does it still reach honest accuracy" — because per-round Byzantine
// draws make single-round reads a coin flip on breakdown rounds.

constexpr int kDegRounds = 20;
constexpr int kTail = 6;

DatasetConfig clustered_data() {
  DatasetConfig cfg = chaos_data();
  cfg.noise = 0.15;
  cfg.mean_train_samples = 30;
  cfg.min_train_samples = 15;
  return cfg;
}

double tail_mean(const std::vector<RoundRecord>& history) {
  double sum = 0.0;
  for (int i = 0; i < kTail; ++i)
    sum += history[history.size() - 1 - static_cast<std::size_t>(i)].accuracy;
  return sum / kTail;
}

double tail_best(const std::vector<RoundRecord>& history) {
  double best = 0.0;
  for (int i = 0; i < kTail; ++i)
    best = std::max(
        best, history[history.size() - 1 - static_cast<std::size_t>(i)].accuracy);
  return best;
}

std::vector<RoundRecord> degradation_run_fedavg(
    const FederatedDataset& data, const std::vector<DeviceProfile>& fleet,
    const Model& init, double byz_prob, std::uint64_t seed) {
  FlRunConfig cfg;
  cfg.rounds = kDegRounds;
  cfg.clients_per_round = 9;
  cfg.local.steps = 6;
  cfg.local.batch = 6;
  cfg.eval_every = 1;
  cfg.eval_clients = 0;  // every client, every round: a full learning curve
  cfg.seed = seed;
  apply_byzantine(cfg.fabric_faults,
                  {"sign-flip", byz_prob, ByzantineMode::SignFlip}, seed);

  FedAvgRunner runner(init, data, fleet, cfg);
  runner.run();
  return runner.history();
}

std::vector<RoundRecord> degradation_run_robust(
    const FederatedDataset& data, const std::vector<DeviceProfile>& fleet,
    const Model& init, RobustAggregator agg, double byz_prob,
    std::uint64_t seed) {
  LocalTrainConfig local;
  local.steps = 6;
  local.batch = 6;
  SessionConfig cfg = SessionConfig{}
                          .with_rounds(kDegRounds)
                          .with_clients_per_round(9)
                          .with_local(local)
                          .with_eval(1, 0)
                          .with_seed(seed)
                          .with_robust_aggregation(agg, /*trim_fraction=*/0.3,
                                                   /*clip_multiplier=*/2.0);
  apply_byzantine(cfg.fabric_faults,
                  {"sign-flip", byz_prob, ByzantineMode::SignFlip}, seed);

  FederationEngine engine(std::make_unique<RobustStrategy>(init), data,
                          fleet, cfg);
  engine.run();
  return engine.history();
}

TEST(ByzantineDegradationTest, RobustAggregatorsHoldWhereMeanFolds) {
  auto data = FederatedDataset::generate(clustered_data());
  auto fleet = chaos_fleet(data.num_clients());
  Rng rng(3);
  Model init(chaos_model(), rng);

  for (std::uint64_t seed : {11ULL, 42ULL}) {
    const double fedavg_honest =
        tail_mean(degradation_run_fedavg(data, fleet, init, 0.0, seed));
    const double fedavg_attacked =
        tail_mean(degradation_run_fedavg(data, fleet, init, 0.3, seed));
    // Mean aggregation has no defense: 30% sign-flipped mass must leave
    // its settled accuracy a test-visible chunk below the honest run.
    EXPECT_LT(fedavg_attacked, fedavg_honest - 0.10)
        << "seed " << seed << " honest " << fedavg_honest << " attacked "
        << fedavg_attacked;

    for (RobustAggregator agg : {RobustAggregator::CoordinateMedian,
                                 RobustAggregator::TrimmedMean,
                                 RobustAggregator::NormClip}) {
      const std::string what =
          "agg " + std::to_string(static_cast<int>(agg)) + " seed " +
          std::to_string(seed);
      const double honest = tail_mean(
          degradation_run_robust(data, fleet, init, agg, 0.0, seed));
      const auto attacked =
          degradation_run_robust(data, fleet, init, agg, 0.3, seed);
      // The robust reducers shrug the same attack off: back to within 5%
      // of their own honest settled accuracy (the headline bound)...
      EXPECT_GE(tail_best(attacked), honest - 0.05)
          << what << " honest " << honest << " attacked best "
          << tail_best(attacked);
      // ...and clearly ahead of undefended mean aggregation.
      EXPECT_GE(tail_mean(attacked), fedavg_attacked + 0.05)
          << what << " robust settled " << tail_mean(attacked)
          << " vs attacked fedavg " << fedavg_attacked;
    }
  }
}

}  // namespace
}  // namespace fedtrans
