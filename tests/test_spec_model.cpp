#include <gtest/gtest.h>

#include "common/check.hpp"
#include "model/model.hpp"
#include "model/similarity.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

TEST(Spec, ConvBuilderAssignsFreshIds) {
  auto s = ModelSpec::conv(3, 12, 10, 4, {8, 16}, {1, 2}, {1, 2});
  ASSERT_EQ(s.cells.size(), 2u);
  EXPECT_NE(s.cells[0].id, s.cells[1].id);
  EXPECT_EQ(s.cells[1].blocks, 2);
  EXPECT_EQ(s.cells[1].stride, 2);
}

TEST(Spec, SerializeRoundTrip) {
  auto s = ModelSpec::conv(3, 12, 10, 4, {8, 16}, {1, 2}, {1, 2});
  s.name = "M3";
  s.model_id = 3;
  s.parent_id = 1;
  s.cells[0].widened_last = true;
  const auto text = s.serialize();
  const auto t = ModelSpec::deserialize(text);
  EXPECT_EQ(s, t);
}

TEST(Spec, SerializeRoundTripAttention) {
  auto s = ModelSpec::attention(1, 12, 10, 4, 16, {32, 32}, {1, 2});
  EXPECT_EQ(ModelSpec::deserialize(s.serialize()), s);
}

TEST(Spec, DeserializeRejectsGarbage) {
  EXPECT_THROW(ModelSpec::deserialize("bogus v9"), Error);
}

TEST(Spec, SummaryMentionsWidths) {
  auto s = ModelSpec::conv(1, 12, 10, 4, {8, 16});
  EXPECT_NE(s.summary().find("8-16"), std::string::npos);
}

TEST(Spec, CellParamCountsMatchInstantiatedModel) {
  for (auto spec :
       {ModelSpec::conv(3, 12, 10, 4, {8, 16}, {2, 1}, {1, 2}),
        ModelSpec::mlp(64, 10, 16, {24, 24}, {1, 2}),
        ModelSpec::attention(1, 12, 10, 4, 8, {16}, {2})}) {
    Rng rng(1);
    Model m(spec, rng);
    const auto counts = cell_param_counts(spec);
    ASSERT_EQ(static_cast<int>(counts.size()), m.num_cells());
    for (int l = 0; l < m.num_cells(); ++l) {
      std::int64_t n = 0;
      for (auto& p : m.cell_params(l)) n += p.value->numel();
      EXPECT_EQ(counts[static_cast<std::size_t>(l)], n)
          << "cell " << l << " of " << spec.summary();
    }
  }
}

TEST(Model, ConvForwardShape) {
  Rng rng(2);
  Model m(ModelSpec::conv(3, 12, 10, 4, {8, 16}, {1, 1}, {1, 2}), rng);
  Tensor x({5, 3, 12, 12});
  x.randn(rng);
  Tensor y = m.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{5, 10}));
}

TEST(Model, MlpForwardShape) {
  Rng rng(3);
  Model m(ModelSpec::mlp(36, 7, 16, {12, 12}), rng);
  Tensor x({4, 1, 6, 6});
  x.randn(rng);
  EXPECT_EQ(m.forward(x, false).shape(), (std::vector<int>{4, 7}));
}

TEST(Model, AttentionForwardShape) {
  Rng rng(4);
  Model m(ModelSpec::attention(1, 12, 5, 4, 8, {16, 16}), rng);
  Tensor x({2, 1, 12, 12});
  x.randn(rng);
  EXPECT_EQ(m.forward(x, false).shape(), (std::vector<int>{2, 5}));
}

TEST(Model, MacsEqualsSumOfCellMacsPlusEnds) {
  Rng rng(5);
  Model m(ModelSpec::conv(1, 12, 10, 4, {8, 16}, {2, 2}, {1, 2}), rng);
  std::int64_t cells = 0;
  for (int l = 0; l < m.num_cells(); ++l) cells += m.cell_macs(l);
  EXPECT_GT(m.macs(), cells);  // stem + classifier add on top
  EXPECT_LT(m.macs(), cells * 2);
}

TEST(Model, CellParamRangeCoversAllCells) {
  Rng rng(6);
  Model m(ModelSpec::conv(1, 12, 10, 4, {8, 16}, {2, 1}), rng);
  const auto all = m.params().size();
  auto [b0, e0] = m.cell_param_range(0);
  auto [b1, e1] = m.cell_param_range(1);
  EXPECT_EQ(e0, b1);
  EXPECT_LT(e1, all);  // classifier params after the last cell
  EXPECT_EQ(e0 - b0, m.cell_params(0).size());
}

TEST(Model, WeightsRoundTrip) {
  Rng rng(7);
  Model m(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  auto ws = m.weights();
  ws[0][0] += 5.0f;
  m.set_weights(ws);
  EXPECT_EQ(m.weights()[0][0], ws[0][0]);
}

TEST(Model, CopyIsDeepAndEquivalent) {
  Rng rng(8);
  Model a(ModelSpec::conv(1, 8, 4, 4, {6, 8}, {1, 1}, {1, 2}), rng);
  Model b = a;
  Tensor x({2, 1, 8, 8});
  x.randn(rng);
  EXPECT_LT(testing::max_abs_diff(a.forward(x, false), b.forward(x, false)),
            1e-9);
  // Mutating the copy leaves the original untouched.
  auto ws = b.weights();
  ws[0][0] += 1.0f;
  b.set_weights(ws);
  EXPECT_GT(testing::max_abs_diff(a.forward(x, false), b.forward(x, false)),
            0.0);
}

TEST(Model, BackwardProducesNonZeroGradients) {
  Rng rng(9);
  Model m(ModelSpec::conv(1, 8, 4, 4, {6}, {2}), rng);
  Tensor x({3, 1, 8, 8});
  x.randn(rng);
  Tensor y = m.forward(x, true);
  Tensor g(y.shape());
  g.fill(1.0f);
  m.backward(g);
  double total = 0.0;
  for (auto& p : m.params()) total += p.grad->l2_norm();
  EXPECT_GT(total, 0.0);
  m.zero_grad();
  total = 0.0;
  for (auto& p : m.params()) total += p.grad->l2_norm();
  EXPECT_EQ(total, 0.0);
}

TEST(Similarity, IdenticalSpecsScoreOne) {
  auto s = ModelSpec::conv(1, 12, 10, 4, {8, 16});
  EXPECT_DOUBLE_EQ(model_similarity(s, s), 1.0);
}

TEST(Similarity, DisjointFamiliesScoreZero) {
  auto a = ModelSpec::conv(1, 12, 10, 4, {8, 16});
  auto b = ModelSpec::conv(1, 12, 10, 4, {8, 16});
  // Give b fresh ids (different lineage).
  b.cells[0].id = 100;
  b.cells[1].id = 101;
  EXPECT_DOUBLE_EQ(model_similarity(a, b), 0.0);
}

TEST(Similarity, SymmetricAndBounded) {
  auto a = ModelSpec::conv(1, 12, 10, 4, {8, 16});
  auto b = a;
  b.cells[1].width = 32;  // same id, widened
  const double s1 = model_similarity(a, b);
  const double s2 = model_similarity(b, a);
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_GT(s1, 0.0);
  EXPECT_LT(s1, 1.0);
}

}  // namespace
}  // namespace fedtrans
