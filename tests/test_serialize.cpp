#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "model/serialize.hpp"
#include "model/transform.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

TEST(ModelSerialize, RoundTripPreservesOutputsConv) {
  Rng rng(1);
  Model m(ModelSpec::conv(3, 8, 5, 4, {6, 8}, {2, 1}, {1, 2}), rng);
  std::stringstream ss;
  save_model(m, ss);
  Model loaded = load_model(ss);
  EXPECT_EQ(loaded.spec(), m.spec());
  Tensor x({2, 3, 8, 8});
  x.randn(rng);
  EXPECT_LT(testing::max_abs_diff(m.forward(x, false),
                                  loaded.forward(x, false)),
            1e-9);
}

TEST(ModelSerialize, RoundTripAttention) {
  Rng rng(2);
  Model m(ModelSpec::attention(1, 8, 4, 4, 8, {12}, {2}), rng);
  std::stringstream ss;
  save_model(m, ss);
  Model loaded = load_model(ss);
  Tensor x({2, 1, 8, 8});
  x.randn(rng);
  EXPECT_LT(testing::max_abs_diff(m.forward(x, false),
                                  loaded.forward(x, false)),
            1e-9);
}

TEST(ModelSerialize, RoundTripTransformedLineage) {
  // Lineage metadata (cell ids, parent ids) survives the round trip so a
  // reloaded family still aligns for similarity/weight sharing.
  Rng rng(3);
  Model parent(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);
  Model child = widen_cell(parent, 1, 2.0, 5, rng);
  std::stringstream ss;
  save_model(child, ss);
  Model loaded = load_model(ss);
  EXPECT_EQ(loaded.spec().parent_id, parent.spec().model_id);
  EXPECT_EQ(loaded.spec().cells[1].id, parent.spec().cells[1].id);
  EXPECT_TRUE(loaded.spec().cells[1].widened_last);
}

TEST(ModelSerialize, RejectsGarbageStream) {
  std::stringstream ss;
  ss << "garbage bytes here";
  EXPECT_THROW(load_model(ss), Error);
}

TEST(ModelSerialize, FileRoundTrip) {
  Rng rng(4);
  Model m(ModelSpec::mlp(16, 4, 8, {10}), rng);
  const std::string path = ::testing::TempDir() + "/ft_model.bin";
  save_model_file(m, path);
  Model loaded = load_model_file(path);
  Tensor x({3, 16});
  x.randn(rng);
  EXPECT_LT(testing::max_abs_diff(m.forward(x, false),
                                  loaded.forward(x, false)),
            1e-9);
}

TEST(ModelSerialize, MissingFileThrows) {
  EXPECT_THROW(load_model_file("/nonexistent/dir/model.bin"), Error);
}

}  // namespace
}  // namespace fedtrans
