// Robust-aggregation tests: the Byzantine-robust reducers as pure
// functions, the RobustStrategy driving a FederationEngine, and the
// deterministic Byzantine client model.
//
//  (1) reducer properties — bitwise permutation invariance for the
//      coordinate-wise median and trimmed mean, exact agreement of
//      trim=0 with an unweighted FedAvg-style fold, and closed-form
//      small cases showing outliers actually get dropped/clipped;
//  (2) attack-draw determinism — byzantine_client is a pure function of
//      (seed, round, client): independent of call order, thread count and
//      transport, toggled only by the configured probability/mode;
//  (3) configuration errors fail loudly at engine construction — robust
//      reducers are non-linear so partial_aggregation trees are rejected,
//      and out-of-range trim/clip knobs are caught in attach;
//  (4) robust sessions over the fabric — flat, 2-level and 3-level trees
//      are bitwise identical to the in-process path (verbatim bundles),
//      with and without Byzantine clients, across 1 and 4 threads, and
//      Sim vs Socket transports agree bit for bit;
//  (5) Byzantine accounting — RoundRecord names the attackers and the
//      fedtrans_byzantine_* metrics tie out; NaN/Inf-poisoned updates
//      (a ScaledUpdate attack with an infinite lambda) are rejected on
//      admission and never reach the global model.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "baselines/robust.hpp"
#include "common/thread_pool.hpp"
#include "fl/engine.hpp"
#include "fl/runner.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures (same scale as the chaos sweep: tiny but non-trivial).

DatasetConfig tiny_data(int clients = 10) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 14;
  cfg.min_train_samples = 8;
  cfg.eval_samples = 6;
  cfg.noise = 0.35;
  cfg.seed = 17;
  return cfg;
}

std::vector<DeviceProfile> tiny_fleet(int n) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.seed = 9;
  cfg.with_median_capacity(5e6);
  return sample_fleet(cfg);
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

/// One-tensor WeightSet from explicit values — the reducer unit tests work
/// on hand-sized inputs where the expected output is closed-form.
WeightSet ws_of(std::vector<float> vals) {
  Tensor t({static_cast<int>(vals.size())});
  for (std::size_t i = 0; i < vals.size(); ++i)
    t[static_cast<std::int64_t>(i)] = vals[i];
  WeightSet ws;
  ws.push_back(std::move(t));
  return ws;
}

/// Random two-tensor WeightSet (mixed shapes so per-parameter iteration is
/// exercised, not just flat vectors).
WeightSet random_ws(Rng& rng, float scale = 1.0f) {
  WeightSet ws;
  ws.push_back(Tensor({3, 4}));
  ws.push_back(Tensor({5}));
  for (auto& t : ws) t.randn(rng, scale);
  return ws;
}

void expect_bitwise_equal(const WeightSet& a, const WeightSet& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(a[i], b[i]), 0.0)
        << what << " tensor " << i;
}

// ---------------------------------------------------------------------------
// (1) Reducer properties.

TEST(RobustReducerTest, MedianIsBitwisePermutationInvariant) {
  Rng rng(101);
  std::vector<WeightSet> deltas;
  for (int i = 0; i < 7; ++i) deltas.push_back(random_ws(rng));
  const WeightSet base = robust_coordinate_median(deltas);

  std::vector<std::size_t> perm(deltas.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  Rng shuffler(7);
  for (int trial = 0; trial < 4; ++trial) {
    for (std::size_t i = perm.size(); i > 1; --i)
      std::swap(perm[i - 1],
                perm[static_cast<std::size_t>(shuffler.next_u64() % i)]);
    std::vector<WeightSet> shuffled;
    for (std::size_t i : perm) shuffled.push_back(deltas[i]);
    expect_bitwise_equal(base, robust_coordinate_median(shuffled),
                         "median permutation " + std::to_string(trial));
  }
}

TEST(RobustReducerTest, TrimmedMeanIsBitwisePermutationInvariant) {
  Rng rng(202);
  std::vector<WeightSet> deltas;
  for (int i = 0; i < 8; ++i) deltas.push_back(random_ws(rng));
  const WeightSet base = robust_trimmed_mean(deltas, 0.25);

  std::vector<WeightSet> reversed(deltas.rbegin(), deltas.rend());
  expect_bitwise_equal(base, robust_trimmed_mean(reversed, 0.25),
                       "trimmed-mean reversed");

  std::vector<WeightSet> rotated(deltas.begin() + 3, deltas.end());
  rotated.insert(rotated.end(), deltas.begin(), deltas.begin() + 3);
  expect_bitwise_equal(base, robust_trimmed_mean(rotated, 0.25),
                       "trimmed-mean rotated");
}

TEST(RobustReducerTest, ZeroTrimMatchesUnweightedFedAvgFoldBitwise) {
  // Integer-valued deltas make float addition exact, so "bitwise" here is
  // not at the mercy of summation order — but the implementation contract
  // is stronger: trim=0 runs the exact ws_axpy-then-scale fold FedAvg uses
  // with unit weights, so this also holds for the random fractional case.
  Rng rng(303);
  std::vector<WeightSet> deltas;
  for (int i = 0; i < 5; ++i) {
    WeightSet ws = random_ws(rng);
    for (auto& t : ws)
      for (std::int64_t e = 0; e < t.numel(); ++e)
        t[e] = std::floor(t[e] * 8.0f);
    deltas.push_back(std::move(ws));
  }

  WeightSet fold = ws_zeros_like(deltas.front());
  for (const WeightSet& d : deltas) ws_axpy(fold, 1.0f, d);
  ws_scale(fold, static_cast<float>(1.0 / static_cast<double>(deltas.size())));

  expect_bitwise_equal(fold, robust_trimmed_mean(deltas, 0.0),
                       "trim=0 vs unweighted fold");

  // Fractional deltas too: same fold, same arithmetic, same bits.
  std::vector<WeightSet> frac;
  for (int i = 0; i < 6; ++i) frac.push_back(random_ws(rng));
  WeightSet frac_fold = ws_zeros_like(frac.front());
  for (const WeightSet& d : frac) ws_axpy(frac_fold, 1.0f, d);
  ws_scale(frac_fold,
           static_cast<float>(1.0 / static_cast<double>(frac.size())));
  expect_bitwise_equal(frac_fold, robust_trimmed_mean(frac, 0.0),
                       "trim=0 fractional");
}

TEST(RobustReducerTest, MedianIgnoresASingleArbitraryOutlier) {
  // 4 honest updates near 1.0 plus one at 1e6: the median lands between
  // the honest values no matter how large the outlier is.
  auto deltas = std::vector<WeightSet>{ws_of({0.9f}), ws_of({1.0f}),
                                       ws_of({1.1f}), ws_of({1.2f}),
                                       ws_of({1e6f})};
  const WeightSet med = robust_coordinate_median(deltas);
  EXPECT_FLOAT_EQ(med[0][0], 1.1f);  // middle of the sorted 5

  // Even count: average of the two middle values.
  deltas.pop_back();
  EXPECT_FLOAT_EQ(robust_coordinate_median(deltas)[0][0],
                  0.5f * (1.0f + 1.1f));
}

TEST(RobustReducerTest, TrimmedMeanDropsExactlyTheExtremes) {
  // n=5, trim=0.2 → k=⌈1⌉=1 per side: {0,1,2,3,100} keeps {1,2,3} → 2.
  const auto deltas = std::vector<WeightSet>{ws_of({0.0f}), ws_of({1.0f}),
                                             ws_of({2.0f}), ws_of({3.0f}),
                                             ws_of({100.0f})};
  EXPECT_FLOAT_EQ(robust_trimmed_mean(deltas, 0.2)[0][0], 2.0f);
  // trim large enough to want everything gone is clamped so one survives:
  // k = (n-1)/2 = 2 → keeps {2} → 2.
  EXPECT_FLOAT_EQ(robust_trimmed_mean(deltas, 0.49)[0][0], 2.0f);
}

TEST(RobustReducerTest, NormClipDropsTheScoredOutlierAndClipsSurvivors) {
  // Three honest clustered updates plus one far-away attacker: Krum-style
  // scoring drops the attacker (f=1), and the survivors — already inside
  // the clip radius — average exactly.
  const auto deltas = std::vector<WeightSet>{ws_of({1.0f, 0.0f}),
                                             ws_of({1.1f, 0.0f}),
                                             ws_of({0.9f, 0.0f}),
                                             ws_of({-50.0f, 40.0f})};
  const WeightSet out = robust_norm_clip(deltas, 0.25, 10.0);
  EXPECT_NEAR(out[0][0], 1.0f, 1e-5);
  EXPECT_NEAR(out[0][1], 0.0f, 1e-6);

  // With a tight multiplier the long survivor is scaled down to the median
  // norm: survivors {1, 1, 4} with clip=1.0 → radius 1 → mean (1+1+1)/3.
  const auto stretch = std::vector<WeightSet>{ws_of({1.0f}), ws_of({1.0f}),
                                              ws_of({4.0f})};
  EXPECT_NEAR(robust_norm_clip(stretch, 0.0, 1.0)[0][0], 1.0f, 1e-5);
}

// ---------------------------------------------------------------------------
// (2) Deterministic attack draws.

TEST(ByzantineDrawTest, DrawIsAPureFunctionOfSeedRoundClient) {
  FaultConfig f;
  f.byzantine_prob = 0.5;
  f.byzantine_mode = ByzantineMode::SignFlip;
  f.seed = 0xfeedULL;

  // Same inputs, same answer — regardless of call order or repetition.
  std::vector<bool> first;
  for (std::uint32_t r = 0; r < 8; ++r)
    for (std::int32_t c = 0; c < 16; ++c)
      first.push_back(byzantine_client(f, r, c));
  std::vector<bool> replay;
  for (std::uint32_t r = 8; r-- > 0;)  // reversed order
    for (std::int32_t c = 16; c-- > 0;)
      replay.push_back(byzantine_client(f, r, c));
  std::reverse(replay.begin(), replay.end());
  EXPECT_EQ(first, replay);

  // The draw actually varies across (round, client) at p=0.5...
  const int hits = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, static_cast<int>(first.size()));

  // ...and is decorrelated from the wire-fault draws sharing the seed.
  FaultConfig other = f;
  other.seed = 0xbeefULL;
  bool any_diff = false;
  for (std::uint32_t r = 0; r < 8 && !any_diff; ++r)
    for (std::int32_t c = 0; c < 16 && !any_diff; ++c)
      any_diff = byzantine_client(f, r, c) != byzantine_client(other, r, c);
  EXPECT_TRUE(any_diff) << "seed must perturb the draw";
}

TEST(ByzantineDrawTest, DisabledConfigsNeverDraw) {
  FaultConfig off;  // byzantine_prob defaults to 0
  FaultConfig none;
  none.byzantine_prob = 1.0;
  none.byzantine_mode = ByzantineMode::None;
  for (std::uint32_t r = 0; r < 4; ++r)
    for (std::int32_t c = 0; c < 8; ++c) {
      EXPECT_FALSE(byzantine_client(off, r, c));
      EXPECT_FALSE(byzantine_client(none, r, c));
    }

  FaultConfig always;
  always.byzantine_prob = 1.0;
  for (std::uint32_t r = 0; r < 4; ++r)
    for (std::int32_t c = 0; c < 8; ++c)
      EXPECT_TRUE(byzantine_client(always, r, c));
}

// ---------------------------------------------------------------------------
// (3) Loud configuration errors.

SessionConfig robust_session(std::uint64_t seed,
                             RobustAggregator agg,
                             int rounds = 3) {
  LocalTrainConfig local;
  local.steps = 2;
  local.batch = 4;
  return SessionConfig{}
      .with_rounds(rounds)
      .with_clients_per_round(5)
      .with_local(local)
      .with_seed(seed)
      .with_robust_aggregation(agg);
}

TEST(RobustConfigTest, PartialAggregationTreeIsRejectedAtConstruction) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  SessionConfig cfg = robust_session(5, RobustAggregator::CoordinateMedian)
                          .with_tree(2, 3)
                          .with_partial_aggregation();
  EXPECT_THROW(FederationEngine(std::make_unique<RobustStrategy>(init),
                                data, fleet, cfg),
               Error);

  // Same tree in the default verbatim mode builds (and runs) fine.
  cfg.with_partial_aggregation(false);
  FederationEngine ok(std::make_unique<RobustStrategy>(init), data, fleet,
                      cfg);
  ok.run_round();
}

TEST(RobustConfigTest, OutOfRangeKnobsAreRejectedInAttach) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  SessionConfig half = robust_session(5, RobustAggregator::TrimmedMean);
  half.robust.trim_fraction = 0.5;  // per-side: nothing would survive
  EXPECT_THROW(FederationEngine(std::make_unique<RobustStrategy>(init),
                                data, fleet, half),
               Error);

  SessionConfig clip = robust_session(5, RobustAggregator::NormClip);
  clip.robust.clip_multiplier = 0.0;
  EXPECT_THROW(FederationEngine(std::make_unique<RobustStrategy>(init),
                                data, fleet, clip),
               Error);
}

TEST(RobustConfigTest, SessionBlockOverridesConstructorConfig) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  RobustConfig ctor;
  ctor.aggregator = RobustAggregator::CoordinateMedian;
  SessionConfig cfg =
      robust_session(5, RobustAggregator::TrimmedMean, /*rounds=*/1);
  FederationEngine engine(std::make_unique<RobustStrategy>(init, ctor), data,
                          fleet, cfg);
  EXPECT_EQ(engine.strategy().name(), "trimmed-mean");
  EXPECT_EQ(engine.strategy_as<RobustStrategy>().config().aggregator,
            RobustAggregator::TrimmedMean);
}

// ---------------------------------------------------------------------------
// (4) Fabric composition: flat vs trees, in-process vs wire, Sim vs Socket,
// 1 vs 4 threads — all bitwise, honest and under attack.

struct RobustOutcome {
  WeightSet weights;
  std::vector<RoundRecord> history;
  double network_bytes = 0.0;
};

RobustOutcome run_robust(const FederatedDataset& data,
                         const std::vector<DeviceProfile>& fleet,
                         const Model& init, SessionConfig cfg) {
  FederationEngine engine(std::make_unique<RobustStrategy>(init), data, fleet,
                          cfg);
  engine.run();
  RobustOutcome out;
  out.weights = engine.strategy_as<RobustStrategy>().model().weights();
  out.history = engine.history();
  out.network_bytes = engine.costs().network_bytes();
  return out;
}

void expect_same_outcome(const RobustOutcome& a, const RobustOutcome& b,
                         const std::string& what) {
  ASSERT_EQ(a.history.size(), b.history.size()) << what;
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_EQ(a.history[r].avg_loss, b.history[r].avg_loss)
        << what << " round " << r;
    EXPECT_EQ(a.history[r].participants, b.history[r].participants)
        << what << " round " << r;
    EXPECT_EQ(a.history[r].lost_updates, b.history[r].lost_updates)
        << what << " round " << r;
    EXPECT_EQ(a.history[r].byzantine_updates, b.history[r].byzantine_updates)
        << what << " round " << r;
    EXPECT_EQ(a.history[r].byzantine_clients, b.history[r].byzantine_clients)
        << what << " round " << r;
    EXPECT_EQ(a.history[r].byzantine_l2, b.history[r].byzantine_l2)
        << what << " round " << r;
  }
  ASSERT_EQ(a.weights.size(), b.weights.size()) << what;
  for (std::size_t i = 0; i < a.weights.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(a.weights[i], b.weights[i]), 0.0)
        << what << " tensor " << i;
}

TEST(RobustFabricTest, FlatAndDeepTreesMatchInProcessBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);
  const int prev_threads = ThreadPool::global().size();

  const auto aggregators = std::vector<RobustAggregator>{
      RobustAggregator::CoordinateMedian, RobustAggregator::TrimmedMean,
      RobustAggregator::NormClip};
  // honest, then 30% sign-flip Byzantine: verbatim-bundle parity must hold
  // under attack too (the draw is keyed on (seed, round, client), never on
  // topology or transport).
  for (double byz_prob : {0.0, 0.3}) {
    for (RobustAggregator agg : aggregators) {
      SessionConfig base = robust_session(11, agg);
      base.fabric_faults.byzantine_prob = byz_prob;
      base.fabric_faults.byzantine_mode = ByzantineMode::SignFlip;
      const std::string what =
          "agg " + std::to_string(static_cast<int>(agg)) + " byz " +
          std::to_string(byz_prob);

      ThreadPool::set_global_threads(1);
      const RobustOutcome in_process = run_robust(data, fleet, init, base);

      ThreadPool::set_global_threads(4);
      SessionConfig flat = base;
      flat.use_fabric = true;
      expect_same_outcome(in_process, run_robust(data, fleet, init, flat),
                          what + " flat");

      SessionConfig two = base;
      two.with_tree(2, 3);
      expect_same_outcome(in_process, run_robust(data, fleet, init, two),
                          what + " two-level");

      SessionConfig three = base;
      three.with_tree(3, 4, 2);
      expect_same_outcome(in_process, run_robust(data, fleet, init, three),
                          what + " three-level");
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(RobustFabricTest, SimAndSocketTransportsAgreeBitwiseUnderAttack) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  SessionConfig sim = robust_session(42, RobustAggregator::TrimmedMean);
  sim.fabric_faults.byzantine_prob = 0.3;
  sim.fabric_faults.byzantine_mode = ByzantineMode::ScaledUpdate;
  sim.use_fabric = true;
  SessionConfig socket = sim;
  socket.with_socket_transport();

  expect_same_outcome(run_robust(data, fleet, init, sim),
                      run_robust(data, fleet, init, socket), "sim vs socket");
}

// ---------------------------------------------------------------------------
// (5) Byzantine accounting + NaN/Inf rejection.

TEST(ByzantineAccountingTest, RoundRecordNamesAttackersAndMetricsTieOut) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  MetricsRegistry::global().reset();
  SessionConfig cfg = robust_session(7, RobustAggregator::CoordinateMedian);
  cfg.fabric_faults.byzantine_prob = 1.0;  // every trained update hostile
  cfg.fabric_faults.byzantine_mode = ByzantineMode::SignFlip;
  FederationEngine engine(std::make_unique<RobustStrategy>(init), data, fleet,
                          cfg);
  engine.run();

  int total_byz = 0;
  for (const RoundRecord& rec : engine.history()) {
    EXPECT_EQ(rec.byzantine_updates, rec.participants)
        << "p=1: every participant is an attacker";
    EXPECT_EQ(static_cast<int>(rec.byzantine_clients.size()),
              rec.byzantine_updates);
    if (rec.byzantine_updates > 0) {
      EXPECT_GT(rec.byzantine_l2, 0.0);
    }
    total_byz += rec.byzantine_updates;
  }
  EXPECT_GT(total_byz, 0);

  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("fedtrans_byzantine_updates_total"),
            static_cast<double>(total_byz));
  EXPECT_EQ(snap.counters.at("fedtrans_byzantine_rounds_total"),
            static_cast<double>(engine.history().size()));
  EXPECT_GT(snap.counters.at("fedtrans_byzantine_attacks_total"), 0.0);
}

TEST(ByzantineAccountingTest, HonestRunsRecordNoAttackers) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FederationEngine engine(
      std::make_unique<RobustStrategy>(init), data, fleet,
      robust_session(7, RobustAggregator::CoordinateMedian));
  engine.run();
  for (const RoundRecord& rec : engine.history()) {
    EXPECT_EQ(rec.byzantine_updates, 0);
    EXPECT_TRUE(rec.byzantine_clients.empty());
    EXPECT_EQ(rec.byzantine_l2, 0.0);
  }
}

TEST(ByzantineAccountingTest, PoisonedUpdatesAreRejectedNotAggregated) {
  // A ScaledUpdate attack with an infinite lambda turns every attacker
  // delta into ±Inf: the strategy must refuse them on admission and the
  // global model must stay finite for the whole session.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  SessionConfig cfg = robust_session(13, RobustAggregator::TrimmedMean, 4);
  cfg.fabric_faults.byzantine_prob = 0.4;
  cfg.fabric_faults.byzantine_mode = ByzantineMode::ScaledUpdate;
  cfg.fabric_faults.byzantine_lambda =
      std::numeric_limits<double>::infinity();
  FederationEngine engine(std::make_unique<RobustStrategy>(init), data, fleet,
                          cfg);
  engine.run();

  auto& strat = engine.strategy_as<RobustStrategy>();
  EXPECT_GT(strat.rejected_updates(), 0) << "the attack must have fired";
  EXPECT_TRUE(ws_all_finite(strat.model().weights()))
      << "no poisoned coordinate may reach the global model";
  // Rejected attackers still count as participants (their bytes moved).
  for (const RoundRecord& rec : engine.history())
    EXPECT_EQ(rec.participants + rec.lost_updates, cfg.clients_per_round);
}

TEST(ByzantineAccountingTest, LabelFlipKeepsCleanDataIntact) {
  // The label-flip attack trains on a flipped *copy*; the provider's data
  // must remain untouched for honest clients in later rounds.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const std::vector<int> before = [&] {
    std::vector<int> ys;
    for (int c = 0; c < data.num_clients(); ++c)
      for (int y : data.client(c).y_train) ys.push_back(y);
    return ys;
  }();

  Rng rng(3);
  Model init(tiny_model(), rng);
  SessionConfig cfg = robust_session(21, RobustAggregator::CoordinateMedian);
  cfg.fabric_faults.byzantine_prob = 0.5;
  cfg.fabric_faults.byzantine_mode = ByzantineMode::LabelFlip;
  FederationEngine engine(std::make_unique<RobustStrategy>(init), data, fleet,
                          cfg);
  engine.run();

  std::vector<int> after;
  for (int c = 0; c < data.num_clients(); ++c)
    for (int y : data.client(c).y_train) after.push_back(y);
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace fedtrans
