// Parallel compute backend: blocked GEMM vs reference, im2col convolution vs
// the direct loop nest, ThreadPool semantics, and thread-count invariance of
// whole federated rounds.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/trainer.hpp"
#include "fl/runner.hpp"
#include "nn/conv2d.hpp"
#include "nn/grouped_conv2d.hpp"
#include "tensor/tensor.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

using testing::max_abs_diff;

// Double-accumulated reference product for correctness checks.
std::vector<float> gemm_reference(bool trans_a, bool trans_b, int m, int n,
                                  int k, float alpha, const float* a, int lda,
                                  const float* b, int ldb, float beta,
                                  const float* c_in, int ldc) {
  std::vector<float> c(static_cast<std::size_t>(m) * ldc, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int p = 0; p < k; ++p) {
        const double av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const double bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        s += av * bv;
      }
      const double prior =
          beta == 0.0f ? 0.0 : static_cast<double>(beta) * c_in[i * ldc + j];
      c[static_cast<std::size_t>(i) * ldc + j] =
          static_cast<float>(prior + alpha * s);
    }
  }
  return c;
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, 7, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100, 1,
                                 [&](std::int64_t lo, std::int64_t) {
                                   if (lo == 42) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, 1, [&](std::int64_t, std::int64_t) {
    // Must not deadlock and must still visit every inner index.
    ThreadPool::global().parallel_for(
        16, 1, [&](std::int64_t lo, std::int64_t hi) {
          total += static_cast<int>(hi - lo);
        });
  });
  EXPECT_EQ(total, 8 * 16);
}

TEST(ThreadPool, NestedCallOnSamePoolFromCallerChunkRunsInline) {
  // The submitting thread participates in its own parallel_for; a nested
  // call on the *same* pool from one of its chunks (e.g. a large GEMM inside
  // a concurrently-training client) must run inline instead of re-locking
  // the submit mutex. Regression test: this used to self-deadlock.
  ThreadPool::set_global_threads(4);
  std::atomic<int> total{0};
  ThreadPool::global().parallel_for(8, 1, [&](std::int64_t, std::int64_t) {
    ThreadPool::global().parallel_for(
        16, 1, [&](std::int64_t lo, std::int64_t hi) {
          total += static_cast<int>(hi - lo);
        });
  });
  ThreadPool::set_global_threads(ThreadPool::global_threads());
  EXPECT_EQ(total, 8 * 16);
}

TEST(Gemm, BetaZeroAssignsOverUninitializedOutput) {
  const int n = 8;
  Rng rng(3);
  Tensor a({n, n}), b({n, n});
  a.randn(rng);
  b.randn(rng);
  std::vector<float> c(n * n, std::nanf(""));
  gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(),
       n);
  for (float v : c) EXPECT_TRUE(std::isfinite(v));
  auto ref = gemm_reference(false, false, n, n, n, 1.0f, a.data(), n, b.data(),
                            n, 0.0f, c.data(), n);
  for (int i = 0; i < n * n; ++i)
    EXPECT_NEAR(c[static_cast<std::size_t>(i)],
                ref[static_cast<std::size_t>(i)], 1e-4);
}

TEST(Gemm, BlockedPathMatchesReferenceAcrossShapesAndTransposes) {
  Rng rng(11);
  // Ragged sizes exercise partial tiles in every blocking dimension; the
  // larger shapes cross the small-GEMM fast-path threshold.
  const struct {
    int m, n, k;
  } shapes[] = {{3, 5, 7}, {33, 47, 29}, {100, 130, 70}, {97, 203, 301}};
  for (const auto& s : shapes) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        const int lda = ta ? s.m : s.k;
        const int ldb = tb ? s.k : s.n;
        Tensor a({ta ? s.k : s.m, lda}), b({tb ? s.n : s.k, ldb});
        Tensor c({s.m, s.n});
        a.randn(rng);
        b.randn(rng);
        c.randn(rng);
        auto ref = gemm_reference(ta, tb, s.m, s.n, s.k, 0.7f, a.data(), lda,
                                  b.data(), ldb, 0.3f, c.data(), s.n);
        gemm(ta, tb, s.m, s.n, s.k, 0.7f, a.data(), lda, b.data(), ldb, 0.3f,
             c.data(), s.n);
        double worst = 0.0;
        for (std::int64_t i = 0; i < c.numel(); ++i)
          worst = std::max(worst,
                           std::fabs(static_cast<double>(c[i]) -
                                     ref[static_cast<std::size_t>(i)]));
        EXPECT_LT(worst, 5e-3)
            << "m=" << s.m << " n=" << s.n << " k=" << s.k << " ta=" << ta
            << " tb=" << tb;
      }
    }
  }
}

TEST(Gemm, ThreadedBitwiseMatchesSingleThreaded) {
  const int m = 211, n = 173, k = 157;
  Rng rng(5);
  Tensor a({m, k}), b({k, n});
  a.randn(rng);
  b.randn(rng);
  Tensor c1({m, n}), c4({m, n});

  ThreadPool::set_global_threads(1);
  gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c1.data(),
       n);
  ThreadPool::set_global_threads(4);
  gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c4.data(),
       n);
  ThreadPool::set_global_threads(ThreadPool::global_threads());

  for (std::int64_t i = 0; i < c1.numel(); ++i)
    ASSERT_EQ(c1[i], c4[i]) << "thread count changed the result at " << i;
}

struct ConvCase {
  int in_c, out_c, kernel, stride, pad, groups;
};

// Forward + backward parity between the im2col lowering and the direct
// reference loops, across strided / padded / 1x1 / grouped / depthwise cases.
TEST(ConvBackend, Im2colMatchesDirectReference) {
  const ConvCase cases[] = {
      {3, 8, 3, 1, -1, 1},   // same-padded 3x3
      {4, 6, 3, 2, 0, 1},    // strided, unpadded
      {5, 7, 1, 1, 0, 1},    // pointwise
      {4, 8, 5, 2, 2, 1},    // large kernel, stride 2
      {6, 8, 3, 1, -1, 2},   // grouped
      {8, 8, 3, 2, -1, 8},   // depthwise, strided
  };
  for (const auto& cc : cases) {
    Rng rng(17);
    Tensor x({2, cc.in_c, 9, 11});
    x.randn(rng);

    auto make = [&](Rng& r) -> std::unique_ptr<Layer> {
      if (cc.groups == 1) {
        auto conv = std::make_unique<Conv2d>(cc.in_c, cc.out_c, cc.kernel,
                                             cc.stride, cc.pad);
        conv->init(r);
        return conv;
      }
      auto conv = std::make_unique<GroupedConv2d>(
          cc.in_c, cc.out_c, cc.kernel, cc.groups, cc.stride, cc.pad);
      conv->init(r);
      return conv;
    };
    Rng r1(23), r2(23);
    auto conv_fast = make(r1);
    auto conv_ref = make(r2);

    set_conv_backend(ConvBackend::Im2col);
    Tensor y_fast = conv_fast->forward(x, true);
    set_conv_backend(ConvBackend::Direct);
    Tensor y_ref = conv_ref->forward(x, true);
    EXPECT_LT(max_abs_diff(y_fast, y_ref), 1e-4)
        << "forward mismatch (groups=" << cc.groups << " k=" << cc.kernel
        << " stride=" << cc.stride << ")";

    Tensor g(y_ref.shape());
    g.randn(rng);
    set_conv_backend(ConvBackend::Im2col);
    Tensor dx_fast = conv_fast->backward(g);
    set_conv_backend(ConvBackend::Direct);
    Tensor dx_ref = conv_ref->backward(g);
    EXPECT_LT(max_abs_diff(dx_fast, dx_ref), 1e-4) << "dx mismatch";

    auto ps_fast = conv_fast->params();
    auto ps_ref = conv_ref->params();
    ASSERT_EQ(ps_fast.size(), ps_ref.size());
    for (std::size_t i = 0; i < ps_fast.size(); ++i)
      EXPECT_LT(max_abs_diff(*ps_fast[i].grad, *ps_ref[i].grad), 2e-3)
          << ps_fast[i].name << " grad mismatch";
    set_conv_backend(ConvBackend::Im2col);
  }
}

// Analytic gradients of the im2col path against finite differences.
TEST(ConvBackend, Im2colGradientsCheckNumerically) {
  set_conv_backend(ConvBackend::Im2col);
  Rng rng(29);
  {
    Conv2d conv(3, 5, 3, 2, 1);
    conv.init(rng);
    testing::check_gradients(conv, {2, 3, 7, 7}, rng);
  }
  {
    GroupedConv2d conv(4, 6, 3, 2, 1);
    conv.init(rng);
    testing::check_gradients(conv, {2, 4, 6, 6}, rng);
  }
}

FederatedDataset backend_dataset() {
  DatasetConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_clients = 8;
  dcfg.hw = 8;
  dcfg.mean_train_samples = 24;
  return FederatedDataset::generate(dcfg);
}

std::vector<DeviceProfile> backend_fleet(int n) {
  std::vector<DeviceProfile> fleet(static_cast<std::size_t>(n));
  for (auto& d : fleet) d.capacity_macs = 1e12;
  return fleet;
}

// One FedAvg run per thread count; every metric and the final weights must be
// identical — client Rngs are pre-forked and reductions run in fixed order.
TEST(ConvBackend, RunnerRoundIdenticalAcrossThreadCounts) {
  auto data = backend_dataset();
  auto run = [&](int threads) {
    ThreadPool::set_global_threads(threads);
    Rng rng(7);
    Model init(ModelSpec::conv(1, 8, 4, 3, {4, 6}, {1, 1}, {1, 2}), rng);
    FlRunConfig cfg;
    cfg.rounds = 3;
    cfg.clients_per_round = 4;
    cfg.local.steps = 2;
    cfg.local.batch = 4;
    cfg.eval_every = 1;
    cfg.seed = 13;
    FedAvgRunner runner(init, data, backend_fleet(data.num_clients()), cfg);
    runner.run();
    return std::make_pair(runner.history(), runner.model().weights());
  };
  auto [hist1, w1] = run(1);
  auto [hist4, w4] = run(4);
  ThreadPool::set_global_threads(ThreadPool::global_threads());

  ASSERT_EQ(hist1.size(), hist4.size());
  for (std::size_t i = 0; i < hist1.size(); ++i) {
    EXPECT_EQ(hist1[i].avg_loss, hist4[i].avg_loss);
    EXPECT_EQ(hist1[i].accuracy, hist4[i].accuracy);
    EXPECT_EQ(hist1[i].cum_macs, hist4[i].cum_macs);
  }
  ASSERT_EQ(w1.size(), w4.size());
  for (std::size_t t = 0; t < w1.size(); ++t)
    for (std::int64_t i = 0; i < w1[t].numel(); ++i)
      ASSERT_EQ(w1[t][i], w4[t][i]) << "weight diverged (tensor " << t << ")";
}

TEST(ConvBackend, TrainerRoundIdenticalAcrossThreadCounts) {
  auto data = backend_dataset();
  auto run = [&](int threads) {
    ThreadPool::set_global_threads(threads);
    FedTransConfig cfg;
    cfg.rounds = 3;
    cfg.clients_per_round = 4;
    cfg.local.steps = 2;
    cfg.local.batch = 4;
    cfg.seed = 19;
    cfg.max_models = 2;
    FedTransTrainer trainer(
        ModelSpec::conv(1, 8, 4, 3, {4, 6}, {1, 1}, {1, 2}), data,
        backend_fleet(data.num_clients()), cfg);
    trainer.run();
    return std::make_pair(trainer.history(), trainer.model(0).weights());
  };
  auto [hist1, w1] = run(1);
  auto [hist4, w4] = run(4);
  ThreadPool::set_global_threads(ThreadPool::global_threads());

  ASSERT_EQ(hist1.size(), hist4.size());
  for (std::size_t i = 0; i < hist1.size(); ++i)
    EXPECT_EQ(hist1[i].avg_loss, hist4[i].avg_loss);
  ASSERT_EQ(w1.size(), w4.size());
  for (std::size_t t = 0; t < w1.size(); ++t)
    for (std::int64_t i = 0; i < w1[t].numel(); ++i)
      ASSERT_EQ(w1[t][i], w4[t][i]) << "weight diverged (tensor " << t << ")";
}

}  // namespace
}  // namespace fedtrans
