// Engine/Strategy parity tests for the federation-engine refactor:
//
//  (1) every legacy entry point (FedAvgRunner, the four baseline runners,
//      FedTransTrainer, FedBuffRunner) is bitwise identical to driving
//      FederationEngine + the matching Strategy directly, across 2 seeds ×
//      2 thread counts;
//  (2) fault-free fabric rounds are bitwise identical to the in-process
//      path for non-FedAvg strategies too (HeteroFL's heterogeneous
//      submodels, SplitMix's multiple tasks per client, FedTrans's model
//      family), and faulty runs still terminate with losses accounted;
//  (3) the layered SessionConfig shared block really is the single
//      definition of the runtime fields, and the legacy config shims
//      forward every field;
//  (4) the RoundObserver callback API reports exactly the records the
//      history collects.

#include <gtest/gtest.h>

#include <type_traits>

#include "baselines/fedrolex.hpp"
#include "baselines/fluid.hpp"
#include "baselines/hetero_fl.hpp"
#include "baselines/split_mix.hpp"
#include "common/thread_pool.hpp"
#include "core/trainer.hpp"
#include "fl/async.hpp"
#include "fl/engine.hpp"
#include "fl/runner.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

DatasetConfig tiny_data(int clients = 10) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 14;
  cfg.min_train_samples = 8;
  cfg.eval_samples = 6;
  cfg.noise = 0.35;
  cfg.seed = 31;
  return cfg;
}

std::vector<DeviceProfile> tiny_fleet(int n, double macs = 5e6,
                                      std::uint64_t seed = 6) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.sigma_compute = 0.8;
  cfg.seed = seed;
  cfg.with_median_capacity(macs);
  return sample_fleet(cfg);
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

void expect_same_weights(WeightSet wa, WeightSet wb, const char* what) {
  ASSERT_EQ(wa.size(), wb.size()) << what;
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0)
        << what << " tensor " << i;
}

void expect_same_history(const std::vector<RoundRecord>& ha,
                         const std::vector<RoundRecord>& hb) {
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t r = 0; r < ha.size(); ++r) {
    EXPECT_EQ(ha[r].round, hb[r].round);
    EXPECT_EQ(ha[r].avg_loss, hb[r].avg_loss) << "round " << r;
    EXPECT_EQ(ha[r].cum_macs, hb[r].cum_macs) << "round " << r;
    EXPECT_EQ(ha[r].round_time_s, hb[r].round_time_s) << "round " << r;
    EXPECT_EQ(ha[r].accuracy, hb[r].accuracy) << "round " << r;
    EXPECT_EQ(ha[r].participants, hb[r].participants) << "round " << r;
    EXPECT_EQ(ha[r].lost_updates, hb[r].lost_updates) << "round " << r;
  }
}

void expect_same_costs(const CostMeter& a, const CostMeter& b) {
  EXPECT_EQ(a.total_macs(), b.total_macs());
  EXPECT_EQ(a.network_bytes(), b.network_bytes());
  EXPECT_EQ(a.storage_bytes(), b.storage_bytes());
}

/// Runs `fn(seed)` under every (seed, thread-count) combination the parity
/// contract covers.
template <typename Fn>
void for_each_parity_config(Fn&& fn) {
  const int prev_threads = ThreadPool::global().size();
  for (std::uint64_t seed : {5ULL, 23ULL}) {
    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);
      fn(seed);
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

BaselineConfig baseline_cfg(std::uint64_t seed) {
  BaselineConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 4;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.eval_every = 2;
  cfg.eval_clients = 5;
  cfg.seed = seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// (1) Legacy shim vs direct engine use.

TEST(EngineParity, FedAvgShimMatchesDirectEngine) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  for_each_parity_config([&](std::uint64_t seed) {
    FlRunConfig cfg;
    cfg.rounds = 3;
    cfg.clients_per_round = 4;
    cfg.local.steps = 3;
    cfg.local.batch = 6;
    cfg.eval_every = 2;
    cfg.seed = seed;
    Rng rng(seed);
    Model init(tiny_model(), rng);

    FedAvgRunner shim(init, data, fleet, cfg);
    shim.run();

    FederationEngine engine(
        std::make_unique<FedAvgStrategy>(init, cfg.options()), data, fleet,
        cfg.to_session());
    engine.run();

    expect_same_weights(shim.model().weights(),
                        engine.strategy_as<FedAvgStrategy>().model().weights(),
                        "fedavg");
    expect_same_history(shim.history(), engine.history());
    expect_same_costs(shim.costs(), engine.costs());
  });
}

TEST(EngineParity, HeteroFLShimMatchesDirectEngine) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), 1e6);
  for_each_parity_config([&](std::uint64_t seed) {
    auto cfg = baseline_cfg(seed);
    HeteroFLRunner shim(tiny_model(), data, fleet, cfg);
    shim.run();

    FederationEngine engine(
        std::make_unique<HeteroFLStrategy>(
            tiny_model(),
            std::vector<double>{1.0, 0.5, 0.25, 0.125, 0.0625}),
        data, fleet, static_cast<const SessionConfig&>(cfg));
    engine.run();

    expect_same_weights(
        shim.global().weights(),
        engine.strategy_as<HeteroFLStrategy>().global().weights(),
        "heterofl");
    expect_same_history(shim.engine().history(), engine.history());
    expect_same_costs(shim.engine().costs(), engine.costs());
  });
}

TEST(EngineParity, SplitMixShimMatchesDirectEngine) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), 1e7);
  for_each_parity_config([&](std::uint64_t seed) {
    auto cfg = baseline_cfg(seed);
    SplitMixRunner shim(tiny_model(), data, fleet, cfg, /*num_bases=*/4);
    shim.run();

    FederationEngine engine(
        std::make_unique<SplitMixStrategy>(tiny_model(), 4), data, fleet,
        static_cast<const SessionConfig&>(cfg));
    engine.run();

    auto& strat = engine.strategy_as<SplitMixStrategy>();
    ASSERT_EQ(shim.num_bases(), strat.num_bases());
    for (int b = 0; b < shim.num_bases(); ++b)
      expect_same_weights(shim.base(b).weights(), strat.base(b).weights(),
                          "splitmix base");
    expect_same_history(shim.engine().history(), engine.history());
    expect_same_costs(shim.engine().costs(), engine.costs());
  });
}

TEST(EngineParity, FluidShimMatchesDirectEngine) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), 5e5);
  for_each_parity_config([&](std::uint64_t seed) {
    auto cfg = baseline_cfg(seed);
    FluidRunner shim(tiny_model(), data, fleet, cfg);
    shim.run();

    FederationEngine engine(std::make_unique<FluidStrategy>(tiny_model()),
                            data, fleet,
                            static_cast<const SessionConfig&>(cfg));
    engine.run();

    expect_same_weights(
        shim.global().weights(),
        engine.strategy_as<FluidStrategy>().global().weights(), "fluid");
    expect_same_history(shim.engine().history(), engine.history());
    expect_same_costs(shim.engine().costs(), engine.costs());
  });
}

TEST(EngineParity, FedRolexShimMatchesDirectEngine) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), 1e6);
  for_each_parity_config([&](std::uint64_t seed) {
    auto cfg = baseline_cfg(seed);
    FedRolexRunner shim(tiny_model(), data, fleet, cfg);
    shim.run();

    FederationEngine engine(
        std::make_unique<FedRolexStrategy>(
            tiny_model(),
            std::vector<double>{1.0, 0.5, 0.25, 0.125, 0.0625}),
        data, fleet, static_cast<const SessionConfig&>(cfg));
    engine.run();

    expect_same_weights(
        shim.global().weights(),
        engine.strategy_as<FedRolexStrategy>().global().weights(),
        "fedrolex");
    expect_same_history(shim.engine().history(), engine.history());
    expect_same_costs(shim.engine().costs(), engine.costs());
  });
}

TEST(EngineParity, FedTransShimMatchesDirectEngine) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  for_each_parity_config([&](std::uint64_t seed) {
    FedTransConfig cfg;
    cfg.rounds = 6;
    cfg.clients_per_round = 4;
    cfg.local.steps = 3;
    cfg.local.batch = 6;
    cfg.gamma = 2;
    cfg.doc_delta = 2;
    cfg.beta = 10.0;  // force transformation
    cfg.act_window = 2;
    cfg.max_models = 3;
    cfg.eval_every = 3;
    cfg.seed = seed;

    FedTransTrainer shim(tiny_model(), data, fleet, cfg);
    shim.run();

    FederationEngine engine(
        std::make_unique<FedTransStrategy>(tiny_model(), cfg), data, fleet,
        static_cast<const SessionConfig&>(cfg));
    engine.run();

    auto& strat = engine.strategy_as<FedTransStrategy>();
    ASSERT_EQ(shim.num_models(), strat.num_models());
    for (int k = 0; k < shim.num_models(); ++k)
      expect_same_weights(shim.model(k).weights(), strat.model(k).weights(),
                          "fedtrans model");
    expect_same_history(shim.history(), engine.history());
    expect_same_costs(shim.costs(), engine.costs());
    EXPECT_EQ(shim.evaluate_final().mean_accuracy,
              strat.evaluate_final().mean_accuracy);
  });
}

TEST(EngineParity, FedBuffShimMatchesDirectEngine) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  for_each_parity_config([&](std::uint64_t seed) {
    AsyncRunConfig cfg;
    cfg.concurrency = 4;
    cfg.buffer_size = 3;
    cfg.aggregations = 5;
    cfg.local.steps = 3;
    cfg.local.batch = 6;
    cfg.seed = seed;
    Rng rng(seed + 1);
    Model init(tiny_model(), rng);

    FedBuffRunner shim(init, data, fleet, cfg);
    shim.run();

    FederationEngine engine(
        std::make_unique<FedBuffStrategy>(init, cfg.server_opt), data, fleet,
        cfg.to_session());
    engine.run();

    expect_same_weights(
        shim.model().weights(),
        engine.strategy_as<FedBuffStrategy>().model().weights(), "fedbuff");
    expect_same_history(shim.history(), engine.history());
    expect_same_costs(shim.costs(), engine.costs());
    EXPECT_EQ(shim.now_s(), engine.now_s());
    EXPECT_EQ(shim.mean_staleness(), engine.mean_staleness());
  });
}

// eval_every is honored in async mode too: every k-th shipped server
// version carries an accuracy probe, the rest keep the -1 sentinel.
TEST(EngineParity, AsyncSessionHonorsEvalEvery) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  AsyncRunConfig cfg;
  cfg.concurrency = 4;
  cfg.buffer_size = 3;
  cfg.aggregations = 6;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.seed = 5;
  cfg.eval_every = 2;
  cfg.eval_clients = 4;
  Rng rng(cfg.seed + 1);
  Model init(tiny_model(), rng);

  FederationEngine engine(
      std::make_unique<FedBuffStrategy>(init, cfg.server_opt), data, fleet,
      cfg.to_session());
  engine.run();

  ASSERT_EQ(engine.history().size(), 6u);
  for (const RoundRecord& rec : engine.history()) {
    if (rec.round % cfg.eval_every == 0) {
      EXPECT_GE(rec.accuracy, 0.0) << "version " << rec.round;
    } else {
      EXPECT_EQ(rec.accuracy, -1.0) << "version " << rec.round;
    }
  }
}

// ---------------------------------------------------------------------------
// (2) Fabric parity beyond FedAvg: heterogeneous submodels, multiple tasks
// per client, and model families all ride the wire bit-exactly.

template <typename MakeRunner>
void expect_fabric_parity(MakeRunner&& make) {
  const int prev_threads = ThreadPool::global().size();
  for (std::uint64_t seed : {7ULL, 19ULL}) {
    for (int threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);
      auto a = make(seed, /*use_fabric=*/false);
      auto b = make(seed, /*use_fabric=*/true);
      a->run();
      b->run();
      ASSERT_NE(b->engine().fabric(), nullptr);
      EXPECT_EQ(b->engine().fabric()->stats().frames_dropped.load(), 0u);
      EXPECT_EQ(b->engine().fabric()->stats().frames_rejected.load(), 0u)
          << "undecodable frames on a clean transport mean a codec bug";
      expect_same_history(a->engine().history(), b->engine().history());
      expect_same_costs(a->engine().costs(), b->engine().costs());
    }
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(FabricStrategyParity, HeteroFLFabricMatchesInProcessBitwise) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), 1e6);
  expect_fabric_parity([&](std::uint64_t seed, bool use_fabric) {
    auto cfg = baseline_cfg(seed);
    cfg.use_fabric = use_fabric;
    auto r = std::make_unique<HeteroFLRunner>(tiny_model(), data, fleet, cfg);
    return r;
  });
  // Weight-level check on one configuration.
  auto cfg = baseline_cfg(7);
  HeteroFLRunner a(tiny_model(), data, fleet, cfg);
  cfg.use_fabric = true;
  HeteroFLRunner b(tiny_model(), data, fleet, cfg);
  a.run();
  b.run();
  expect_same_weights(a.global().weights(), b.global().weights(),
                      "heterofl fabric");
}

TEST(FabricStrategyParity, SplitMixFabricMatchesInProcessBitwise) {
  // SplitMix schedules several tasks per client per round — exercises the
  // wire protocol's per-task slots (one client trains multiple payloads).
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), 1e7);
  expect_fabric_parity([&](std::uint64_t seed, bool use_fabric) {
    auto cfg = baseline_cfg(seed);
    cfg.use_fabric = use_fabric;
    return std::make_unique<SplitMixRunner>(tiny_model(), data, fleet, cfg,
                                            4);
  });
}

TEST(FabricStrategyParity, FedTransFabricMatchesInProcessBitwise) {
  // The full multi-model coordinator over the fabric: per-client payloads
  // are members of a *growing* model family, shipped spec+weights.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  const int prev_threads = ThreadPool::global().size();
  for (int threads : {1, 4}) {
    ThreadPool::set_global_threads(threads);
    FedTransConfig cfg;
    cfg.rounds = 6;
    cfg.clients_per_round = 4;
    cfg.local.steps = 3;
    cfg.local.batch = 6;
    cfg.gamma = 2;
    cfg.doc_delta = 2;
    cfg.beta = 10.0;
    cfg.act_window = 2;
    cfg.max_models = 3;
    cfg.seed = 13;

    FedTransTrainer a(tiny_model(), data, fleet, cfg);
    cfg.use_fabric = true;
    FedTransTrainer b(tiny_model(), data, fleet, cfg);
    a.run();
    b.run();

    ASSERT_NE(b.engine().fabric(), nullptr);
    ASSERT_EQ(a.num_models(), b.num_models());
    EXPECT_GE(a.num_models(), 2) << "transformation should have fired";
    for (int k = 0; k < a.num_models(); ++k)
      expect_same_weights(a.model(k).weights(), b.model(k).weights(),
                          "fedtrans fabric model");
    expect_same_history(a.history(), b.history());
    expect_same_costs(a.costs(), b.costs());
  }
  ThreadPool::set_global_threads(prev_threads);
}

TEST(FabricStrategyParity, HeteroFLFaultyRunTerminatesAndAccountsLosses) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients(), 1e6);
  auto cfg = baseline_cfg(3);
  cfg.rounds = 5;
  cfg.clients_per_round = 5;
  cfg.eval_every = 0;
  cfg.use_fabric = true;
  cfg.fabric_faults.drop_prob = 0.25;
  cfg.fabric_faults.dropout_prob = 0.25;
  cfg.fabric_faults.seed = 99;

  HeteroFLRunner runner(tiny_model(), data, fleet, cfg);
  runner.run();  // must terminate despite losses

  ASSERT_EQ(runner.engine().history().size(),
            static_cast<std::size_t>(cfg.rounds));
  int participants = 0, lost = 0;
  for (const auto& rec : runner.engine().history()) {
    participants += rec.participants;
    lost += rec.lost_updates;
  }
  EXPECT_GT(participants, 0) << "some updates must still get through";
  EXPECT_GT(lost, 0) << "heavy fault injection must lose some updates";
  ASSERT_NE(runner.engine().fabric(), nullptr);
  EXPECT_GT(runner.engine().fabric()->stats().frames_dropped.load(), 0u);
  EXPECT_EQ(runner.engine().fabric()->stats().frames_rejected.load(), 0u);
}

// ---------------------------------------------------------------------------
// (3) Layered config: the shared block is the single definition and every
// legacy config forwards it.

static_assert(std::is_base_of_v<SessionRuntime, SessionConfig>);
static_assert(std::is_base_of_v<SessionConfig, FlRunConfig>);
static_assert(std::is_base_of_v<SessionConfig, BaselineConfig>);
static_assert(std::is_base_of_v<SessionConfig, FedTransConfig>);
static_assert(std::is_base_of_v<SessionRuntime, AsyncRunConfig>);

TEST(SessionConfigTest, LegacyConfigsForwardEverySharedField) {
  // Mutate every shared-block field through the legacy struct and verify
  // the engine session sees the same values — no copy-forwarding code left
  // to drift.
  FlRunConfig fl;
  fl.rounds = 17;
  fl.clients_per_round = 9;
  fl.local.steps = 5;
  fl.local.batch = 3;
  fl.eval_every = 4;
  fl.eval_clients = 11;
  fl.seed = 123;
  fl.selector = SelectorKind::Oort;
  fl.use_fabric = true;
  fl.fabric_faults.drop_prob = 0.5;
  const SessionConfig s = fl.to_session();
  EXPECT_EQ(s.rounds, 17);
  EXPECT_EQ(s.clients_per_round, 9);
  EXPECT_EQ(s.local.steps, 5);
  EXPECT_EQ(s.local.batch, 3);
  EXPECT_EQ(s.eval_every, 4);
  EXPECT_EQ(s.eval_clients, 11);
  EXPECT_EQ(s.seed, 123u);
  EXPECT_EQ(s.selector, SelectorKind::Oort);
  EXPECT_TRUE(s.use_fabric);
  EXPECT_EQ(s.fabric_faults.drop_prob, 0.5);

  AsyncRunConfig ac;
  ac.concurrency = 3;
  ac.buffer_size = 2;
  ac.aggregations = 7;
  ac.staleness_exponent = 0.25;
  ac.seed = 55;
  ac.local.steps = 9;
  const SessionConfig as = ac.to_session();
  EXPECT_EQ(as.mode, SessionMode::Async);
  EXPECT_EQ(as.async.concurrency, 3);
  EXPECT_EQ(as.async.buffer_size, 2);
  EXPECT_EQ(as.async.aggregations, 7);
  EXPECT_EQ(as.async.staleness_exponent, 0.25);
  EXPECT_EQ(as.seed, 55u);
  EXPECT_EQ(as.local.steps, 9);
}

TEST(SessionConfigTest, DefaultsMatchLegacyDefaults) {
  EXPECT_EQ(FlRunConfig{}.rounds, 50);
  EXPECT_EQ(BaselineConfig{}.rounds, 60);
  EXPECT_EQ(FedTransConfig{}.rounds, 60);
  EXPECT_EQ(SessionConfig{}.eval_clients, 32);
  EXPECT_EQ(AsyncRunConfig{}.buffer_size, 10);
}

TEST(SessionConfigTest, FluentBuilderComposes) {
  const auto cfg = SessionConfig{}
                       .with_rounds(12)
                       .with_clients_per_round(6)
                       .with_eval(3, 8)
                       .with_seed(42)
                       .with_selector(SelectorKind::PowerOfChoice)
                       .with_fabric();
  EXPECT_EQ(cfg.rounds, 12);
  EXPECT_EQ(cfg.clients_per_round, 6);
  EXPECT_EQ(cfg.eval_every, 3);
  EXPECT_EQ(cfg.eval_clients, 8);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.selector, SelectorKind::PowerOfChoice);
  EXPECT_TRUE(cfg.use_fabric);
  EXPECT_EQ(cfg.mode, SessionMode::Sync);
}

// ---------------------------------------------------------------------------
// (4) RoundObserver: the structured replacement for ad-hoc history
// plumbing.

class CountingObserver : public RoundObserver {
 public:
  void on_round_start(int round) override { starts.push_back(round); }
  void on_round_end(const RoundRecord& rec) override {
    records.push_back(rec);
  }
  std::vector<int> starts;
  std::vector<RoundRecord> records;
};

TEST(RoundObserverTest, ObserverSeesEveryRoundRecord) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  FlRunConfig cfg;
  cfg.rounds = 4;
  cfg.clients_per_round = 3;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.eval_every = 2;
  cfg.seed = 9;
  Rng rng(2);

  FederationEngine engine(
      std::make_unique<FedAvgStrategy>(Model(tiny_model(), rng),
                                       cfg.options()),
      data, fleet, cfg.to_session());

  CountingObserver obs;
  engine.add_observer(&obs);
  int callback_rounds = 0;
  engine.on_round([&](const RoundRecord&) { ++callback_rounds; });
  engine.run();

  ASSERT_EQ(obs.records.size(), engine.history().size());
  ASSERT_EQ(obs.starts.size(), engine.history().size());
  EXPECT_EQ(callback_rounds, cfg.rounds);
  for (std::size_t r = 0; r < obs.records.size(); ++r) {
    EXPECT_EQ(obs.records[r].round, engine.history()[r].round);
    EXPECT_EQ(obs.records[r].avg_loss, engine.history()[r].avg_loss);
    EXPECT_EQ(obs.records[r].accuracy, engine.history()[r].accuracy);
  }
}

}  // namespace
}  // namespace fedtrans
