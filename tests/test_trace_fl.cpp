#include <gtest/gtest.h>

#include "common/check.hpp"
#include "data/dataset.hpp"
#include "fl/local_train.hpp"
#include "fl/runner.hpp"
#include "fl/server_opt.hpp"
#include "trace/device.hpp"

namespace fedtrans {
namespace {

TEST(Trace, FleetSizeAndDeterminism) {
  FleetConfig cfg;
  cfg.num_devices = 50;
  auto a = sample_fleet(cfg);
  auto b = sample_fleet(cfg);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(a[7].compute_macs_per_s, b[7].compute_macs_per_s);
}

TEST(Trace, DisparityAtLeast29xForRealisticFleet) {
  // Paper §5.1: the FedScale trace disparity exceeds 29×. Our log-normal
  // fleet reproduces that at n >= 100.
  FleetConfig cfg;
  cfg.num_devices = 150;
  cfg.sigma_compute = 1.0;
  auto fleet = sample_fleet(cfg);
  EXPECT_GE(fleet_disparity(fleet), 29.0);
}

TEST(Trace, CapacityDerivedFromLatencyBudget) {
  FleetConfig cfg;
  cfg.num_devices = 10;
  cfg.latency_budget_s = 0.01;
  auto fleet = sample_fleet(cfg);
  for (const auto& d : fleet)
    EXPECT_DOUBLE_EQ(d.capacity_macs, d.compute_macs_per_s * 0.01);
}

TEST(Trace, WithMedianCapacityCalibration) {
  FleetConfig cfg;
  cfg.latency_budget_s = 0.004;
  cfg.with_median_capacity(8e5);
  EXPECT_DOUBLE_EQ(cfg.median_compute_macs_per_s, 2e8);
}

TEST(Trace, RoundTimeComputePlusComm) {
  DeviceProfile d;
  d.compute_macs_per_s = 1e6;
  d.bandwidth_bytes_per_s = 1e3;
  // 3*1000*2*5/1e6 + 2*500/1e3 = 0.03 + 1.0
  EXPECT_NEAR(client_round_time_s(d, 1000, 2, 5, 500), 1.03, 1e-9);
}

TEST(Trace, InferenceLatencyMs) {
  DeviceProfile d;
  d.compute_macs_per_s = 2e6;
  EXPECT_DOUBLE_EQ(inference_latency_ms(d, 1e6), 500.0);
}

TEST(Trace, MostCapableFit) {
  DeviceProfile d;
  d.capacity_macs = 100;
  EXPECT_EQ(most_capable_fit(d, {50, 90, 120}), 1);
  EXPECT_EQ(most_capable_fit(d, {120, 200}), -1);
}

DatasetConfig tiny_data(int clients = 8) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 24;
  cfg.min_train_samples = 12;
  cfg.eval_samples = 8;
  cfg.noise = 0.35;
  cfg.seed = 5;
  return cfg;
}

std::vector<DeviceProfile> ample_fleet(int n) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.with_median_capacity(1e7);
  return sample_fleet(cfg);
}

TEST(LocalTrain, ReducesLossAndReportsDelta) {
  auto data = FederatedDataset::generate(tiny_data());
  Rng rng(3);
  Model model(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  const double before = evaluate_loss(model, data.client(0));
  auto start = model.weights();
  LocalTrainConfig cfg;
  cfg.steps = 40;
  cfg.batch = 8;
  auto res = local_train(model, data.client(0), cfg, rng);
  const double after = evaluate_loss(model, data.client(0));
  EXPECT_LT(after, before);
  EXPECT_EQ(res.num_samples, data.client(0).train_size());
  EXPECT_GT(res.macs_used, 0.0);
  // delta = start - end, elementwise.
  auto end = model.weights();
  for (std::size_t i = 0; i < start.size(); ++i)
    for (std::int64_t j = 0; j < start[i].numel(); ++j)
      EXPECT_NEAR(res.delta[i][j], start[i][j] - end[i][j], 1e-6);
}

TEST(LocalTrain, EmptyClientThrows) {
  Rng rng(4);
  Model model(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  ClientData empty;
  EXPECT_THROW(local_train(model, empty, {}, rng), Error);
}

TEST(FedAvgRunner, LearnsSeparableTask) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = ample_fleet(data.num_clients());
  Rng rng(6);
  FlRunConfig cfg;
  cfg.rounds = 15;
  cfg.clients_per_round = 4;
  cfg.local.steps = 10;
  cfg.local.batch = 8;
  cfg.seed = 6;
  FedAvgRunner runner(Model(ModelSpec::conv(1, 8, 4, 4, {6}), rng), data,
                      fleet, cfg);
  const double acc0 = runner.mean_client_accuracy();
  runner.run();
  const double acc1 = runner.mean_client_accuracy();
  EXPECT_GT(acc1, acc0 + 0.15);
  EXPECT_GT(runner.costs().total_macs(), 0.0);
  EXPECT_EQ(runner.history().size(), 15u);
}

TEST(FedAvgRunner, CostAccountingConsistent) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = ample_fleet(data.num_clients());
  Rng rng(7);
  Model init(ModelSpec::conv(1, 8, 4, 4, {6}), rng);
  const double model_bytes = static_cast<double>(init.param_bytes());
  const double model_macs = static_cast<double>(init.macs());
  FlRunConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 4;
  cfg.local.steps = 5;
  cfg.local.batch = 6;
  FedAvgRunner runner(std::move(init), data, fleet, cfg);
  runner.run();
  // 3 rounds × 4 clients × (3 × macs × steps × batch).
  EXPECT_NEAR(runner.costs().total_macs(), 12 * 3 * model_macs * 5 * 6, 1.0);
  EXPECT_NEAR(runner.costs().network_bytes(), 12 * 2 * model_bytes, 1.0);
}

TEST(FedAvgRunner, RespectCapacitySkipsWeakClients) {
  auto data = FederatedDataset::generate(tiny_data());
  // All devices too weak for the model.
  std::vector<DeviceProfile> fleet(static_cast<std::size_t>(data.num_clients()));
  for (auto& d : fleet) {
    d.compute_macs_per_s = 1e3;
    d.bandwidth_bytes_per_s = 1e3;
    d.capacity_macs = 1.0;
  }
  Rng rng(8);
  FlRunConfig cfg;
  cfg.rounds = 2;
  cfg.respect_capacity = true;
  FedAvgRunner runner(Model(ModelSpec::conv(1, 8, 4, 4, {6}), rng), data,
                      fleet, cfg);
  runner.run();
  EXPECT_EQ(runner.costs().total_macs(), 0.0);
}

TEST(FedAvgRunner, SelectClientsDistinctAndBounded) {
  Rng rng(9);
  auto sel = FedAvgRunner::select_clients(10, 4, rng);
  ASSERT_EQ(sel.size(), 4u);
  std::sort(sel.begin(), sel.end());
  EXPECT_EQ(std::unique(sel.begin(), sel.end()), sel.end());
  auto all = FedAvgRunner::select_clients(3, 10, rng);
  EXPECT_EQ(all.size(), 3u);
}

TEST(ServerOpt, FedAvgAppliesNegativeDelta) {
  WeightSet w{Tensor::from({2}, {1.0f, 2.0f})};
  WeightSet d{Tensor::from({2}, {0.5f, -0.5f})};
  FedAvgServerOpt opt(1.0);
  opt.apply(w, d);
  EXPECT_FLOAT_EQ(w[0][0], 0.5f);
  EXPECT_FLOAT_EQ(w[0][1], 2.5f);
}

TEST(ServerOpt, FedYogiMovesAgainstDelta) {
  WeightSet w{Tensor::from({1}, {1.0f})};
  FedYogiServerOpt opt(/*eta=*/0.1);
  for (int i = 0; i < 5; ++i) {
    WeightSet d{Tensor::from({1}, {1.0f})};
    opt.apply(w, d);
  }
  EXPECT_LT(w[0][0], 1.0f);  // consistent positive delta => weight decreases
}

TEST(ServerOpt, FactoryNames) {
  EXPECT_EQ(make_server_opt(ServerOptKind::FedAvg)->name(), "FedAvg");
  EXPECT_EQ(make_server_opt(ServerOptKind::FedYogi)->name(), "FedYogi");
}

TEST(Weights, SetOperations) {
  WeightSet a{Tensor::from({2}, {1, 2})};
  WeightSet b{Tensor::from({2}, {3, 4})};
  ws_add(a, b);
  EXPECT_FLOAT_EQ(a[0][1], 6.0f);
  ws_sub(a, b);
  ws_scale(a, 2.0f);
  EXPECT_FLOAT_EQ(a[0][0], 2.0f);
  ws_axpy(a, -1.0f, b);
  EXPECT_FLOAT_EQ(a[0][0], -1.0f);
  EXPECT_EQ(ws_numel(a), 2);
  auto z = ws_zeros_like(a);
  EXPECT_EQ(z[0].l2_norm(), 0.0);
  EXPECT_GT(ws_l2_norm(a), 0.0);
}

}  // namespace
}  // namespace fedtrans
