#include <gtest/gtest.h>

#include "nn/attention.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

TEST(Attention, OutputShapeMatchesInput) {
  Rng rng(1);
  Attention attn(8);
  attn.init(rng);
  Tensor x({2, 5, 8});
  x.randn(rng);
  Tensor y = attn.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Attention, GradientCheck) {
  Rng rng(2);
  Attention attn(4);
  attn.init(rng);
  testing::check_gradients(attn, {1, 3, 4}, rng, /*tol=*/4e-2);
}

TEST(Attention, ZeroOutputProjectionGivesZero) {
  Rng rng(3);
  Attention attn(6);
  attn.init(rng);
  attn.zero_output_projection();
  Tensor x({1, 4, 6});
  x.randn(rng);
  Tensor y = attn.forward(x, true);
  EXPECT_LT(y.abs_max(), 1e-7);
}

TEST(Attention, PermutationEquivariance) {
  // Self-attention without positional encoding commutes with token
  // permutation.
  Rng rng(4);
  Attention attn(5);
  attn.init(rng);
  Tensor x({1, 3, 5});
  x.randn(rng);
  Tensor y = attn.forward(x, true);
  // Swap tokens 0 and 2.
  Tensor xp = x;
  for (int d = 0; d < 5; ++d) {
    std::swap(xp.at(0, 0, d), xp.at(0, 2, d));
  }
  Tensor yp = attn.forward(xp, true);
  for (int d = 0; d < 5; ++d) {
    EXPECT_NEAR(yp.at(0, 0, d), y.at(0, 2, d), 1e-5);
    EXPECT_NEAR(yp.at(0, 2, d), y.at(0, 0, d), 1e-5);
    EXPECT_NEAR(yp.at(0, 1, d), y.at(0, 1, d), 1e-5);
  }
}

TEST(Attention, MacsFormula) {
  Attention attn(8);
  EXPECT_EQ(attn.macs({6, 8}), 4LL * 6 * 8 * 8 + 2LL * 6 * 6 * 8);
}

TEST(TokenMlp, GradientCheck) {
  Rng rng(5);
  TokenMlp mlp(4, 7);
  mlp.init(rng);
  testing::check_gradients(mlp, {2, 3, 4}, rng, /*tol=*/4e-2);
}

TEST(TokenMlp, ZeroOutputProjectionGivesZero) {
  Rng rng(6);
  TokenMlp mlp(4, 6);
  mlp.init(rng);
  mlp.zero_output_projection();
  Tensor x({1, 3, 4});
  x.randn(rng);
  EXPECT_LT(mlp.forward(x, true).abs_max(), 1e-7);
}

TEST(TokenMlp, MacsFormula) {
  TokenMlp mlp(8, 16);
  EXPECT_EQ(mlp.macs({5, 8}), 2LL * 5 * 8 * 16);
}

TEST(PatchToTokens, RoundTrip) {
  PatchToTokens p;
  Rng rng(7);
  Tensor x({2, 3, 2, 2});
  x.randn(rng);
  Tensor y = p.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 4, 3}));
  // Channel-major to token-major transpose: y[b,t,c] == x[b,c,t].
  EXPECT_EQ(y.at(0, 1, 2), x.at(0, 2, 0, 1));
  Tensor dx = p.backward(y);
  EXPECT_LT(testing::max_abs_diff(dx, x), 1e-9);
}

TEST(MeanTokens, ForwardAndBackward) {
  MeanTokens m;
  Tensor x = Tensor::from({1, 2, 2}, {1, 2, 3, 4});
  Tensor y = m.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3.0f);
  Tensor g = Tensor::from({1, 2}, {2, 4});
  Tensor dx = m.backward(g);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 1, 1), 2.0f);
}

}  // namespace
}  // namespace fedtrans
