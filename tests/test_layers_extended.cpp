// Unit + property tests for the extended NN substrate: BatchNorm, LayerNorm,
// MaxPool2d / AvgPool2d, Dropout, Sequential, GroupedConv2d (+ the paper's
// grouped→dense conversion, Appendix A.1).

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dropout.hpp"
#include "nn/grouped_conv2d.hpp"
#include "nn/layer_norm.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

using testing::check_gradients;
using testing::max_abs_diff;

// ---------------------------------------------------------------- BatchNorm

TEST(BatchNormTest, GradientsMatchFiniteDifferences2d) {
  Rng rng(11);
  BatchNorm bn(5);
  check_gradients(bn, {6, 5}, rng);
}

TEST(BatchNormTest, GradientsMatchFiniteDifferences4d) {
  Rng rng(12);
  BatchNorm bn(3);
  check_gradients(bn, {4, 3, 5, 5}, rng);
}

TEST(BatchNormTest, TrainOutputIsNormalizedPerChannel) {
  Rng rng(13);
  Tensor x({16, 4, 3, 3});
  x.randn(rng, 2.0f);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] += 5.0f;
  BatchNorm bn(4);
  Tensor y = bn.forward(x, /*train=*/true);
  // gamma=1, beta=0 → each channel of y has ~zero mean and ~unit variance.
  const std::int64_t per = 16 * 3 * 3;
  for (int c = 0; c < 4; ++c) {
    double sum = 0.0, sq = 0.0;
    for (int n = 0; n < 16; ++n)
      for (int h = 0; h < 3; ++h)
        for (int w = 0; w < 3; ++w) {
          const double v = y.at(n, c, h, w);
          sum += v;
          sq += v * v;
        }
    const double mean = sum / static_cast<double>(per);
    const double var = sq / static_cast<double>(per) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, RunningStatsOneStepUpdateIsExact) {
  Rng rng(14);
  Tensor x({8, 2});
  x.randn(rng, 1.5f);
  double mean1 = 0.0, sq1 = 0.0;
  for (int n = 0; n < 8; ++n) {
    mean1 += x.at(n, 1);
    sq1 += static_cast<double>(x.at(n, 1)) * x.at(n, 1);
  }
  mean1 /= 8.0;
  const double var1 = sq1 / 8.0 - mean1 * mean1;
  const double unbiased1 = var1 * 8.0 / 7.0;

  BatchNorm bn(2, /*momentum=*/0.25);
  bn.forward(x, true);
  EXPECT_NEAR(bn.running_mean()[1], 0.25 * mean1, 1e-5);
  EXPECT_NEAR(bn.running_var()[1], 0.75 * 1.0 + 0.25 * unbiased1, 1e-4);
}

TEST(BatchNormTest, EvalUsesRunningStatsNotBatchStats) {
  Rng rng(15);
  BatchNorm bn(3);
  // Warm the running stats on a shifted distribution.
  for (int it = 0; it < 200; ++it) {
    Tensor x({32, 3});
    x.randn(rng, 2.0f);
    for (std::int64_t i = 0; i < x.numel(); ++i) x[i] += 3.0f;
    bn.forward(x, true);
  }
  // A wildly different eval batch must be normalized by the *running* stats:
  // a constant batch has zero batch-variance, but eval output should not
  // blow up — it uses the learned var ≈ 4.
  Tensor probe({4, 3}, 3.0f);
  Tensor y = bn.forward(probe, /*train=*/false);
  for (std::int64_t i = 0; i < y.numel(); ++i)
    EXPECT_NEAR(y[i], 0.0, 0.2);  // (3 − mean≈3)/std≈2
}

TEST(BatchNormTest, ResetRunningStatsRestoresIdentityStats) {
  Rng rng(16);
  BatchNorm bn(2);
  Tensor x({8, 2});
  x.randn(rng, 3.0f);
  bn.forward(x, true);
  bn.reset_running_stats();
  EXPECT_EQ(bn.running_mean()[0], 0.0f);
  EXPECT_EQ(bn.running_var()[0], 1.0f);
}

TEST(BatchNormTest, CloneCarriesAffineAndRunningStats) {
  Rng rng(17);
  BatchNorm bn(2);
  Tensor x({8, 2});
  x.randn(rng, 1.0f);
  bn.forward(x, true);
  bn.gamma()[0] = 2.5f;
  auto copy = bn.clone();
  auto* bn2 = dynamic_cast<BatchNorm*>(copy.get());
  ASSERT_NE(bn2, nullptr);
  EXPECT_EQ(bn2->gamma()[0], 2.5f);
  EXPECT_EQ(bn2->running_mean()[1], bn.running_mean()[1]);
  EXPECT_EQ(bn2->running_var()[1], bn.running_var()[1]);
}

TEST(BatchNormTest, RejectsMismatchedChannels) {
  BatchNorm bn(4);
  Tensor x({2, 3, 5, 5});
  EXPECT_THROW(bn.forward(x, true), Error);
}

TEST(BatchNormTest, RejectsInvalidConstruction) {
  EXPECT_THROW(BatchNorm(0), Error);
  EXPECT_THROW(BatchNorm(4, /*momentum=*/0.0), Error);
  EXPECT_THROW(BatchNorm(4, 0.1, /*eps=*/0.0), Error);
}

// ---------------------------------------------------------------- LayerNorm

TEST(LayerNormTest, GradientsMatchFiniteDifferences2d) {
  Rng rng(21);
  LayerNorm ln(6);
  check_gradients(ln, {5, 6}, rng);
}

TEST(LayerNormTest, GradientsMatchFiniteDifferences3d) {
  Rng rng(22);
  LayerNorm ln(4);
  check_gradients(ln, {3, 5, 4}, rng);
}

TEST(LayerNormTest, RowsAreNormalized) {
  Rng rng(23);
  Tensor x({4, 7, 8});
  x.randn(rng, 3.0f);
  LayerNorm ln(8);
  Tensor y = ln.forward(x, true);
  for (int n = 0; n < 4; ++n)
    for (int t = 0; t < 7; ++t) {
      double sum = 0.0, sq = 0.0;
      for (int d = 0; d < 8; ++d) {
        sum += y.at(n, t, d);
        sq += static_cast<double>(y.at(n, t, d)) * y.at(n, t, d);
      }
      EXPECT_NEAR(sum / 8.0, 0.0, 1e-4);
      EXPECT_NEAR(sq / 8.0, 1.0, 2e-2);
    }
}

TEST(LayerNormTest, AffineParametersApply) {
  Tensor x = Tensor::from({1, 2}, {1.0f, -1.0f});
  LayerNorm ln(2);
  ln.gamma()[0] = 3.0f;
  ln.beta()[1] = 0.5f;
  Tensor y = ln.forward(x, true);
  EXPECT_NEAR(y.at(0, 0), 3.0f, 1e-3);   // xhat = 1 → 3·1 + 0
  EXPECT_NEAR(y.at(0, 1), -0.5f, 1e-3);  // xhat = −1 → 1·(−1) + 0.5
}

TEST(LayerNormTest, RejectsWrongLastDim) {
  LayerNorm ln(8);
  Tensor x({2, 4});
  EXPECT_THROW(ln.forward(x, true), Error);
}

// ------------------------------------------------------------------ pooling

TEST(MaxPool2dTest, HandComputed2x2) {
  Tensor x = Tensor::from({1, 1, 2, 4},
                          {1.0f, 2.0f, 5.0f, 3.0f, 4.0f, 0.0f, -1.0f, 6.0f});
  MaxPool2d pool(2);
  Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.shape(), (std::vector<int>{1, 1, 1, 2}));
  EXPECT_EQ(y.at(0, 0, 0, 0), 4.0f);
  EXPECT_EQ(y.at(0, 0, 0, 1), 6.0f);
}

TEST(MaxPool2dTest, BackwardRoutesToArgmaxOnly) {
  Tensor x = Tensor::from({1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 0.5f});
  MaxPool2d pool(2);
  pool.forward(x, true);
  Tensor g = Tensor::from({1, 1, 1, 1}, {7.0f});
  Tensor dx = pool.backward(g);
  EXPECT_EQ(dx.at(0, 0, 0, 0), 0.0f);
  EXPECT_EQ(dx.at(0, 0, 1, 0), 7.0f);  // max was 3.0 at (1,0)
  EXPECT_EQ(dx.at(0, 0, 0, 1), 0.0f);
  EXPECT_EQ(dx.at(0, 0, 1, 1), 0.0f);
}

TEST(MaxPool2dTest, TieBreaksToFirstInScanOrder) {
  Tensor x({1, 1, 2, 2}, 1.0f);  // all equal
  MaxPool2d pool(2);
  pool.forward(x, true);
  Tensor dx = pool.backward(Tensor::from({1, 1, 1, 1}, {1.0f}));
  EXPECT_EQ(dx.at(0, 0, 0, 0), 1.0f);
  EXPECT_EQ(dx.at(0, 0, 0, 1), 0.0f);
}

TEST(MaxPool2dTest, GradientsMatchFiniteDifferences) {
  // Distinct values avoid argmax flips under the finite-difference probes.
  Tensor x({2, 3, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>((i * 37) % 97) * 0.1f;
  MaxPool2d pool(2);
  Rng rng(31);
  // check_gradients randomizes x; run a manual variant with safe spacing.
  Tensor out = pool.forward(x, true);
  Tensor proj(out.shape());
  proj.randn(rng, 1.0f);
  Tensor dx = pool.backward(proj);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.numel(); i += 7) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    Tensor yp = pool.forward(xp, true);
    Tensor ym = pool.forward(xm, true);
    double lp = 0.0, lm = 0.0;
    for (std::int64_t j = 0; j < yp.numel(); ++j) {
      lp += static_cast<double>(yp[j]) * proj[j];
      lm += static_cast<double>(ym[j]) * proj[j];
    }
    EXPECT_NEAR(dx[i], (lp - lm) / (2.0 * eps), 1e-2) << "at " << i;
  }
}

TEST(MaxPool2dTest, StrideSmallerThanKernelOverlaps) {
  MaxPool2d pool(3, 1);
  Tensor x({1, 1, 5, 5}, 0.0f);
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 3, 3}));
}

TEST(MaxPool2dTest, RejectsWindowLargerThanInput) {
  MaxPool2d pool(4);
  Tensor x({1, 1, 3, 3});
  EXPECT_THROW(pool.forward(x, true), Error);
}

TEST(AvgPool2dTest, HandComputed2x2) {
  Tensor x = Tensor::from({1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 6.0f});
  AvgPool2d pool(2);
  Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.shape(), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_NEAR(y[0], 3.0f, 1e-6);
}

TEST(AvgPool2dTest, GradientsMatchFiniteDifferences) {
  Rng rng(32);
  AvgPool2d pool(2);
  check_gradients(pool, {2, 3, 4, 4}, rng);
}

TEST(AvgPool2dTest, BackwardSpreadsUniformly) {
  Tensor x({1, 1, 2, 2}, 1.0f);
  AvgPool2d pool(2);
  pool.forward(x, true);
  Tensor dx = pool.backward(Tensor::from({1, 1, 1, 1}, {8.0f}));
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_NEAR(dx[i], 2.0f, 1e-6);
}

// ------------------------------------------------------------------ dropout

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(41);
  Tensor x({4, 8});
  x.randn(rng, 1.0f);
  Dropout drop(0.5);
  Tensor y = drop.forward(x, /*train=*/false);
  EXPECT_EQ(max_abs_diff(x, y), 0.0);
  // Backward after eval forward is also identity.
  Tensor g({4, 8}, 1.0f);
  Tensor dx = drop.backward(g);
  EXPECT_EQ(max_abs_diff(g, dx), 0.0);
}

TEST(DropoutTest, ZeroProbabilityIsIdentityInTraining) {
  Rng rng(42);
  Tensor x({4, 8});
  x.randn(rng, 1.0f);
  Dropout drop(0.0);
  Tensor y = drop.forward(x, true);
  EXPECT_EQ(max_abs_diff(x, y), 0.0);
}

TEST(DropoutTest, DropsApproximatelyPFraction) {
  Tensor x({100, 100}, 1.0f);
  Dropout drop(0.3, /*seed=*/7);
  Tensor y = drop.forward(x, true);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i)
    if (y[i] == 0.0f) ++zeros;
  const double frac = static_cast<double>(zeros) / y.numel();
  EXPECT_NEAR(frac, 0.3, 0.02);
}

TEST(DropoutTest, SurvivorsAreScaledByInverseKeepProbability) {
  Tensor x({64, 64}, 2.0f);
  Dropout drop(0.25, 9);
  Tensor y = drop.forward(x, true);
  for (std::int64_t i = 0; i < y.numel(); ++i)
    if (y[i] != 0.0f) {
      EXPECT_NEAR(y[i], 2.0f / 0.75f, 1e-5);
    }
}

TEST(DropoutTest, BackwardUsesSameMaskAsForward) {
  Rng rng(43);
  Tensor x({8, 8});
  x.randn(rng, 1.0f);
  Dropout drop(0.5, 11);
  Tensor y = drop.forward(x, true);
  Tensor g({8, 8}, 1.0f);
  Tensor dx = drop.backward(g);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (y[i] == 0.0f)
      EXPECT_EQ(dx[i], 0.0f);
    else
      EXPECT_NEAR(dx[i], 2.0f, 1e-5);  // 1/(1−0.5)
  }
}

TEST(DropoutTest, SameSeedSameMask) {
  Tensor x({16, 16}, 1.0f);
  Dropout a(0.5, 123), b(0.5, 123);
  Tensor ya = a.forward(x, true);
  Tensor yb = b.forward(x, true);
  EXPECT_EQ(max_abs_diff(ya, yb), 0.0);
}

TEST(DropoutTest, RejectsInvalidProbability) {
  EXPECT_THROW(Dropout(-0.1), Error);
  EXPECT_THROW(Dropout(1.0), Error);
}

// --------------------------------------------------------------- Sequential

TEST(SequentialTest, ForwardMatchesManualChain) {
  Rng rng(51);
  auto l1 = std::make_unique<Linear>(6, 5);
  auto l2 = std::make_unique<Linear>(5, 3);
  l1->init(rng);
  l2->init(rng);
  auto l1c = l1->clone();
  auto l2c = l2->clone();

  Sequential seq;
  seq.add(std::move(l1)).add(std::move(l2));

  Tensor x({4, 6});
  x.randn(rng, 1.0f);
  Tensor manual = l2c->forward(l1c->forward(x, true), true);
  Tensor chained = seq.forward(x, true);
  EXPECT_LT(max_abs_diff(manual, chained), 1e-6);
}

TEST(SequentialTest, ParamsConcatenateInOrder) {
  Rng rng(52);
  Sequential seq;
  seq.emplace<Linear>(4, 3).emplace<Linear>(3, 2);
  // Two Linears with bias → 4 parameter tensors.
  EXPECT_EQ(seq.params().size(), 4u);
  EXPECT_EQ(seq.num_params(), 4 * 3 + 3 + 3 * 2 + 2);
}

TEST(SequentialTest, MacsAndShapeChain) {
  Sequential seq;
  seq.emplace<Linear>(10, 8).emplace<Linear>(8, 2);
  EXPECT_EQ(seq.macs({10}), 10 * 8 + 8 * 2);
  EXPECT_EQ(seq.out_shape({10}), (std::vector<int>{2}));
}

TEST(SequentialTest, CloneIsDeep) {
  Rng rng(53);
  Sequential seq;
  seq.emplace<Linear>(3, 3);
  dynamic_cast<Linear&>(seq.layer(0)).init(rng);
  auto copy = seq.clone();

  Tensor x({2, 3});
  x.randn(rng, 1.0f);
  Tensor before = copy->forward(x, true);
  // Mutate the original; the clone must not change.
  for (auto& p : seq.params()) p.value->fill(0.0f);
  Tensor after = copy->forward(x, true);
  EXPECT_EQ(max_abs_diff(before, after), 0.0);
}

TEST(SequentialTest, GradientsFlowThroughStack) {
  Rng rng(54);
  Sequential seq;
  auto l1 = std::make_unique<Linear>(5, 4);
  l1->init(rng);
  seq.add(std::move(l1));
  auto l2 = std::make_unique<Linear>(4, 3);
  l2->init(rng);
  seq.add(std::move(l2));
  check_gradients(seq, {3, 5}, rng);
}

TEST(SequentialTest, RejectsNullLayer) {
  Sequential seq;
  EXPECT_THROW(seq.add(nullptr), Error);
  EXPECT_THROW(seq.layer(0), Error);
}

// ------------------------------------------------------------- grouped conv

TEST(GroupedConv2dTest, GroupsOneMatchesDenseConv) {
  Rng rng(61);
  GroupedConv2d grouped(4, 6, 3, /*groups=*/1);
  grouped.init(rng);
  auto dense = grouped.to_dense();

  Tensor x({2, 4, 5, 5});
  x.randn(rng, 1.0f);
  Tensor yg = grouped.forward(x, true);
  Tensor yd = dense->forward(x, true);
  EXPECT_LT(max_abs_diff(yg, yd), 1e-6);
}

TEST(GroupedConv2dTest, GradientsMatchFiniteDifferencesGroups2) {
  Rng rng(62);
  GroupedConv2d conv(4, 6, 3, /*groups=*/2);
  conv.init(rng);
  check_gradients(conv, {2, 4, 5, 5}, rng);
}

TEST(GroupedConv2dTest, GradientsMatchFiniteDifferencesDepthwise) {
  Rng rng(63);
  GroupedConv2d conv(5, 5, 3, /*groups=*/5);
  conv.init(rng);
  check_gradients(conv, {2, 5, 4, 4}, rng);
}

TEST(GroupedConv2dTest, MacsScaleInverselyWithGroups) {
  GroupedConv2d g1(8, 8, 3, 1), g2(8, 8, 3, 2), g8(8, 8, 3, 8);
  const std::vector<int> in{8, 6, 6};
  EXPECT_EQ(g1.macs(in), 2 * g2.macs(in));
  EXPECT_EQ(g1.macs(in), 8 * g8.macs(in));
}

TEST(GroupedConv2dTest, RejectsNonDividingGroups) {
  EXPECT_THROW(GroupedConv2d(4, 6, 3, 3), Error);  // 4 % 3 != 0
  EXPECT_THROW(GroupedConv2d(6, 4, 3, 3), Error);  // 4 % 3 != 0
  EXPECT_THROW(GroupedConv2d(6, 6, 3, 0), Error);
}

// Paper Appendix A.1: grouped layers are converted to dense before running
// HeteroFL/SplitMix; conversion must preserve the function exactly while
// (for groups > 1) increasing MACs.
struct GroupedToDenseCase {
  int in_c, out_c, k, groups, stride;
};

class GroupedToDenseTest : public ::testing::TestWithParam<GroupedToDenseCase> {};

TEST_P(GroupedToDenseTest, DenseConversionPreservesFunction) {
  const auto c = GetParam();
  Rng rng(64 + c.groups);
  GroupedConv2d grouped(c.in_c, c.out_c, c.k, c.groups, c.stride);
  grouped.init(rng);
  auto dense = grouped.to_dense();

  Tensor x({2, c.in_c, 7, 7});
  x.randn(rng, 1.0f);
  Tensor yg = grouped.forward(x, true);
  Tensor yd = dense->forward(x, true);
  EXPECT_LT(max_abs_diff(yg, yd), 1e-6);

  const std::vector<int> in{c.in_c, 7, 7};
  if (c.groups > 1)
    EXPECT_GT(dense->macs(in), grouped.macs(in))
        << "dense conversion should cost more MACs";
  else
    EXPECT_EQ(dense->macs(in), grouped.macs(in));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupedToDenseTest,
    ::testing::Values(GroupedToDenseCase{4, 4, 3, 1, 1},
                      GroupedToDenseCase{4, 4, 3, 2, 1},
                      GroupedToDenseCase{4, 4, 3, 4, 1},
                      GroupedToDenseCase{6, 12, 3, 3, 1},
                      GroupedToDenseCase{8, 8, 1, 8, 1},
                      GroupedToDenseCase{4, 8, 3, 2, 2},
                      GroupedToDenseCase{8, 4, 5, 4, 2}),
    [](const ::testing::TestParamInfo<GroupedToDenseCase>& info) {
      const auto& c = info.param;
      return "in" + std::to_string(c.in_c) + "out" + std::to_string(c.out_c) +
             "k" + std::to_string(c.k) + "g" + std::to_string(c.groups) +
             "s" + std::to_string(c.stride);
    });

TEST(DepthwiseSeparableTest, ShapeAndMacsBelowDense) {
  Rng rng(65);
  auto block = make_depthwise_separable(8, 16, 3, 1, rng);
  const std::vector<int> in{8, 6, 6};
  EXPECT_EQ(block->out_shape(in), (std::vector<int>{16, 6, 6}));
  Conv2d dense(8, 16, 3);
  EXPECT_LT(block->macs(in), dense.macs(in));
}

TEST(DepthwiseSeparableTest, ForwardBackwardRoundTrip) {
  Rng rng(66);
  auto block = make_depthwise_separable(4, 6, 3, 2, rng);
  Tensor x({2, 4, 6, 6});
  x.randn(rng, 1.0f);
  Tensor y = block->forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 6, 3, 3}));
  Tensor g(y.shape(), 1.0f);
  Tensor dx = block->backward(g);
  EXPECT_TRUE(dx.same_shape(x));
}

}  // namespace
}  // namespace fedtrans
