// Tests for MultiHeadAttention: numerical gradients across head counts,
// exact reduction to the single-head Attention layer at heads == 1, and the
// residual-identity initialization used for function-preserving insertion.

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "nn/attention.hpp"
#include "nn/multihead_attention.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

using testing::check_gradients;
using testing::max_abs_diff;

class MhaGradients : public ::testing::TestWithParam<int> {};

TEST_P(MhaGradients, MatchFiniteDifferences) {
  const int heads = GetParam();
  Rng rng(100 + heads);
  MultiHeadAttention mha(8, heads);
  mha.init(rng);
  check_gradients(mha, {2, 5, 8}, rng);
}

INSTANTIATE_TEST_SUITE_P(Heads, MhaGradients, ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "h" + std::to_string(info.param);
                         });

TEST(MultiHeadAttentionTest, SingleHeadMatchesAttentionExactly) {
  Rng rng(7);
  Attention single(6);
  single.init(rng);
  MultiHeadAttention multi(6, 1);
  // Copy weights across via the identically-ordered params() lists.
  auto sp = single.params();
  auto mp = multi.params();
  ASSERT_EQ(sp.size(), mp.size());
  for (std::size_t i = 0; i < sp.size(); ++i) {
    ASSERT_EQ(sp[i].name, mp[i].name);
    *mp[i].value = *sp[i].value;
  }

  Tensor x({2, 4, 6});
  x.randn(rng, 1.0f);
  Tensor ys = single.forward(x, true);
  Tensor ym = multi.forward(x, true);
  EXPECT_LT(max_abs_diff(ys, ym), 1e-5);
}

TEST(MultiHeadAttentionTest, HeadsChangeTheFunction) {
  // Same packed weights, different head count → different attention
  // patterns (heads restrict the score computation to their slice).
  Rng rng(8);
  MultiHeadAttention one(8, 1), four(8, 4);
  one.init(rng);
  auto p1 = one.params();
  auto p4 = four.params();
  for (std::size_t i = 0; i < p1.size(); ++i) *p4[i].value = *p1[i].value;

  Tensor x({1, 5, 8});
  x.randn(rng, 1.0f);
  Tensor y1 = one.forward(x, true);
  Tensor y4 = four.forward(x, true);
  EXPECT_GT(max_abs_diff(y1, y4), 1e-4);
}

TEST(MultiHeadAttentionTest, ZeroOutputProjectionGivesZeroOutput) {
  Rng rng(9);
  MultiHeadAttention mha(8, 2);
  mha.init(rng);
  mha.zero_output_projection();
  Tensor x({2, 3, 8});
  x.randn(rng, 1.0f);
  Tensor y = mha.forward(x, true);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], 0.0f);
}

TEST(MultiHeadAttentionTest, OutputIsRowStochasticMixOfValues) {
  // With identity-like V projection and zero Q/K, attention is uniform:
  // every token's output (pre-Wo) averages the values. Verify through the
  // public API with Wo = I.
  MultiHeadAttention mha(4, 2);
  auto ps = mha.params();
  // wq = wk = 0 → uniform attention; wv = I; wo = I; biases 0.
  for (auto& p : ps) p.value->zero();
  Tensor* wv = ps[4].value;
  Tensor* wo = ps[6].value;
  for (int i = 0; i < 4; ++i) {
    wv->at(i, i) = 1.0f;
    wo->at(i, i) = 1.0f;
  }
  Tensor x = Tensor::from({1, 2, 4}, {1.0f, 2.0f, 3.0f, 4.0f,  //
                                      5.0f, 6.0f, 7.0f, 8.0f});
  Tensor y = mha.forward(x, true);
  // Uniform attention over 2 tokens → every token gets the mean value row.
  for (int t = 0; t < 2; ++t)
    for (int dd = 0; dd < 4; ++dd)
      EXPECT_NEAR(y.at(0, t, dd), (x.at(0, 0, dd) + x.at(0, 1, dd)) / 2.0f,
                  1e-5f);
}

TEST(MultiHeadAttentionTest, MacsGrowWithSequenceLength) {
  MultiHeadAttention mha(8, 2);
  EXPECT_GT(mha.macs({16, 8}), mha.macs({4, 8}));
  // Projections dominate: 4·T·D² term present.
  EXPECT_GE(mha.macs({4, 8}), 4 * 4 * 8 * 8);
}

TEST(MultiHeadAttentionTest, CloneIsDeep) {
  Rng rng(10);
  MultiHeadAttention mha(6, 3);
  mha.init(rng);
  auto copy = mha.clone();
  Tensor x({1, 4, 6});
  x.randn(rng, 1.0f);
  Tensor before = copy->forward(x, true);
  for (auto& p : mha.params()) p.value->fill(0.0f);
  Tensor after = copy->forward(x, true);
  EXPECT_EQ(max_abs_diff(before, after), 0.0);
}

TEST(MultiHeadAttentionTest, RejectsNonDividingHeads) {
  EXPECT_THROW(MultiHeadAttention(8, 3), Error);
  EXPECT_THROW(MultiHeadAttention(8, 0), Error);
}

TEST(MultiHeadAttentionTest, RejectsWrongInputDim) {
  MultiHeadAttention mha(8, 2);
  Tensor x({2, 3, 6});
  EXPECT_THROW(mha.forward(x, true), Error);
}

}  // namespace
}  // namespace fedtrans
