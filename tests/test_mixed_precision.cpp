// Mixed-precision (fp16/bf16) training path: dtype conversion round-trips
// and edge cases, half-tagged tensor serialization, and an end-to-end
// FedAvg comparison showing half-storage sessions stay close to fp32 while
// cutting wire bytes ~2× (billed CostMeter bytes exactly, fabric
// frame bytes approximately — headers and shapes stay full width).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "fl/runner.hpp"
#include "tensor/dtype.hpp"
#include "tensor/tensor.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

TEST(DtypeConvert, F16RoundTripIsExactOnGrid) {
  // Every value that survives one f32→f16→f32 trip is on the f16 grid, so a
  // second trip must be the identity (incl. subnormals and specials).
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(rng.normal(0.0, 100.0));
    const float once = f16_bits_to_f32(f32_to_f16_bits(x));
    const float twice = f16_bits_to_f32(f32_to_f16_bits(once));
    ASSERT_EQ(once, twice) << "x=" << x;
  }
}

TEST(DtypeConvert, Bf16RoundTripIsExactOnGrid) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(rng.normal(0.0, 1e6));
    const float once = bf16_bits_to_f32(f32_to_bf16_bits(x));
    const float twice = bf16_bits_to_f32(f32_to_bf16_bits(once));
    ASSERT_EQ(once, twice) << "x=" << x;
  }
}

TEST(DtypeConvert, EdgeCases) {
  // Zeros keep their sign.
  EXPECT_EQ(f32_to_f16_bits(0.0f), 0x0000u);
  EXPECT_EQ(f32_to_f16_bits(-0.0f), 0x8000u);
  EXPECT_EQ(f32_to_bf16_bits(-0.0f), 0x8000u);

  // Exactly representable small integers and powers of two are preserved.
  for (float v : {1.0f, -2.0f, 0.5f, 1024.0f, -0.25f}) {
    EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(v)), v);
    EXPECT_EQ(bf16_bits_to_f32(f32_to_bf16_bits(v)), v);
  }

  // f16 overflow saturates to inf; bf16 keeps the f32 exponent range.
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(1e6f)), inf);
  EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(-1e6f)), -inf);
  EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(inf)), inf);
  EXPECT_EQ(bf16_bits_to_f32(f32_to_bf16_bits(inf)), inf);

  // NaN stays NaN.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(f16_bits_to_f32(f32_to_f16_bits(nan))));
  EXPECT_TRUE(std::isnan(bf16_bits_to_f32(f32_to_bf16_bits(nan))));

  // f16 subnormal range (|x| < 2^-14) round-trips onto the subnormal grid.
  const float sub = 3.0e-6f;
  const float snapped = f16_bits_to_f32(f32_to_f16_bits(sub));
  EXPECT_GT(snapped, 0.0f);
  EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(snapped)), snapped);
  // Below half the smallest subnormal, rounds to zero.
  EXPECT_EQ(f16_bits_to_f32(f32_to_f16_bits(1.0e-8f)), 0.0f);
}

// The batch converters (which take the F16C path when compiled in) must
// agree bit-for-bit with the scalar ones.
TEST(DtypeConvert, BatchMatchesScalar) {
  Rng rng(5);
  std::vector<float> src(1000);
  for (auto& v : src) v = static_cast<float>(rng.normal(0.0, 10.0));
  src[0] = 0.0f;
  src[1] = -0.0f;
  src[2] = std::numeric_limits<float>::infinity();
  src[3] = 1e-7f;  // f16 subnormal
  src[4] = 70000.0f;  // f16 overflow

  for (Dtype d : {Dtype::F16, Dtype::BF16}) {
    std::vector<std::uint16_t> bits(src.size());
    f32_to_half(src.data(), bits.data(), static_cast<std::int64_t>(src.size()),
                d);
    std::vector<float> back(src.size());
    half_to_f32(bits.data(), back.data(),
                static_cast<std::int64_t>(bits.size()), d);
    for (std::size_t i = 0; i < src.size(); ++i) {
      ASSERT_EQ(bits[i], f32_to_half_bits(src[i], d))
          << dtype_name(d) << " encode mismatch at " << i << " (" << src[i]
          << ")";
      ASSERT_EQ(back[i], half_bits_to_f32(bits[i], d))
          << dtype_name(d) << " decode mismatch at " << i;
    }
  }
}

TEST(DtypeConvert, RoundToDtypeIsIdempotent) {
  Rng rng(6);
  Tensor t({31, 17});
  t.randn(rng, 5.0f);
  for (Dtype d : {Dtype::F16, Dtype::BF16}) {
    Tensor once = t;
    round_to_dtype(once.values(), d);
    Tensor twice = once;
    round_to_dtype(twice.values(), d);
    for (std::int64_t i = 0; i < t.numel(); ++i)
      ASSERT_EQ(once[i], twice[i]);
  }
}

TEST(PrecisionConfig, Defaults) {
  Precision p;
  EXPECT_FALSE(p.enabled());
  EXPECT_EQ(p.effective_loss_scale(), 1.0);
  p.dtype = Dtype::F16;
  EXPECT_TRUE(p.enabled());
  EXPECT_EQ(p.effective_loss_scale(), 1024.0);
  p.dtype = Dtype::BF16;
  EXPECT_EQ(p.effective_loss_scale(), 1.0);
  p.loss_scale = 64.0;
  EXPECT_EQ(p.effective_loss_scale(), 64.0);
}

TEST(HalfSerialization, TaggedTensorShipsHalfWidthAndRoundTripsExactly) {
  Rng rng(8);
  Tensor t({5, 9, 3});
  t.randn(rng, 2.0f);
  const std::int64_t f32_bytes = t.serialized_bytes();

  for (Dtype d : {Dtype::F16, Dtype::BF16}) {
    Tensor q = t;
    q.quantize_storage(d);
    EXPECT_EQ(q.dtype(), d);
    // Quantizing is value-rounding, not a dtype-variant refactor: the shape
    // and fp32 working view are unchanged.
    EXPECT_TRUE(q.same_shape(t));

    // Header + shape stay 4-byte; payload halves.
    EXPECT_EQ(q.serialized_bytes(), f32_bytes - t.numel() * 2);

    std::ostringstream os;
    q.save(os);
    const std::string blob = os.str();
    EXPECT_EQ(static_cast<std::int64_t>(blob.size()), q.serialized_bytes());

    std::istringstream is(blob);
    Tensor back = Tensor::load(is);
    EXPECT_EQ(back.dtype(), d);
    ASSERT_TRUE(back.same_shape(q));
    // Values sit on the half grid, so the 2-byte round-trip is lossless.
    for (std::int64_t i = 0; i < q.numel(); ++i) ASSERT_EQ(q[i], back[i]);
  }
}

TEST(HalfSerialization, F32FormatIsUnchanged) {
  // An untagged tensor must serialize byte-identically to the historical
  // rank-only header format (dtype bits zero).
  Rng rng(9);
  Tensor t({4, 4});
  t.randn(rng);
  std::ostringstream os;
  t.save(os);
  const std::string blob = os.str();
  ASSERT_GE(blob.size(), 4u);
  EXPECT_EQ(blob[0], 2);  // rank
  EXPECT_EQ(blob[1], 0);  // dtype byte: F32
  EXPECT_EQ(static_cast<std::int64_t>(blob.size()),
            (1 + 2) * 4 + t.numel() * 4);
  std::istringstream is(blob);
  Tensor back = Tensor::load(is);
  EXPECT_EQ(back.dtype(), Dtype::F32);
  for (std::int64_t i = 0; i < t.numel(); ++i) ASSERT_EQ(t[i], back[i]);
}

// --- End-to-end: half-storage FedAvg vs fp32 ------------------------------

FederatedDataset mp_dataset() {
  DatasetConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_clients = 8;
  dcfg.hw = 8;
  dcfg.mean_train_samples = 24;
  return FederatedDataset::generate(dcfg);
}

std::vector<DeviceProfile> mp_fleet(int n) {
  std::vector<DeviceProfile> fleet(static_cast<std::size_t>(n));
  for (auto& d : fleet) d.capacity_macs = 1e12;
  return fleet;
}

FlRunConfig mp_config() {
  FlRunConfig cfg;
  cfg.rounds = 5;
  cfg.clients_per_round = 4;
  cfg.local.steps = 2;
  cfg.local.batch = 4;
  cfg.eval_every = 0;
  cfg.seed = 13;
  return cfg;
}

TEST(MixedPrecisionE2E, HalfStorageTracksFp32AndHalvesBilledBytes) {
  auto data = mp_dataset();
  auto run = [&](Precision prec) {
    Rng rng(7);
    Model init(ModelSpec::conv(1, 8, 4, 3, {4, 6}, {1, 1}, {1, 2}), rng);
    FlRunConfig cfg = mp_config();
    cfg.local.precision = prec;
    FedAvgRunner runner(init, data, mp_fleet(data.num_clients()), cfg);
    runner.run();
    return std::make_tuple(runner.history(), runner.costs().network_bytes(),
                           runner.model().weights());
  };

  auto [hist32, bytes32, w32] = run(Precision{});
  for (Dtype d : {Dtype::F16, Dtype::BF16}) {
    Precision prec;
    prec.dtype = d;
    auto [hist16, bytes16, w16] = run(prec);

    // Billing scales the fp32 byte quote by exactly dtype_bytes/4.
    EXPECT_DOUBLE_EQ(bytes16, bytes32 * 0.5) << dtype_name(d);

    // Training runs on the half grid but must track the fp32 trajectory:
    // same round count, losses close, final weights close.
    ASSERT_EQ(hist16.size(), hist32.size());
    for (std::size_t i = 0; i < hist16.size(); ++i)
      EXPECT_NEAR(hist16[i].avg_loss, hist32[i].avg_loss, 0.15)
          << dtype_name(d) << " round " << i;
    ASSERT_EQ(w16.size(), w32.size());
    double max_diff = 0.0;
    for (std::size_t t = 0; t < w16.size(); ++t) {
      ASSERT_TRUE(w16[t].same_shape(w32[t]));
      // The server keeps fp32 master weights (clients quantize on entry),
      // so the aggregate stays untagged.
      EXPECT_EQ(w16[t].dtype(), Dtype::F32);
      for (std::int64_t i = 0; i < w16[t].numel(); ++i)
        max_diff = std::max(max_diff,
                            std::abs(static_cast<double>(w16[t][i]) -
                                     w32[t][i]));
    }
    EXPECT_LT(max_diff, 0.1) << dtype_name(d);
  }
}

TEST(MixedPrecisionE2E, FabricWireBytesDropRoughlyTwofold) {
  auto data = mp_dataset();
  auto run = [&](Precision prec) {
    Rng rng(7);
    Model init(ModelSpec::conv(1, 8, 4, 3, {4, 6}, {1, 1}, {1, 2}), rng);
    FlRunConfig cfg = mp_config();
    cfg.rounds = 2;
    cfg.use_fabric = true;
    cfg.local.precision = prec;
    FedAvgRunner runner(init, data, mp_fleet(data.num_clients()), cfg);
    runner.run();
    const FederationServer* fabric = runner.engine().fabric();
    EXPECT_NE(fabric, nullptr);
    return std::make_pair(
        static_cast<double>(fabric->stats().bytes_sent.load()),
        runner.history());
  };

  auto [bytes32, hist32] = run(Precision{});
  Precision prec;
  prec.dtype = Dtype::F16;
  auto [bytes16, hist16] = run(prec);

  // Real serialized frames: weight payloads halve, headers/shapes/metrics
  // stay full width — so strictly between 2× and the header-only floor.
  EXPECT_LT(bytes16, 0.62 * bytes32);
  EXPECT_GT(bytes16, 0.45 * bytes32);

  // The half session still trains sanely over the fabric.
  ASSERT_EQ(hist16.size(), hist32.size());
  for (std::size_t i = 0; i < hist16.size(); ++i)
    EXPECT_NEAR(hist16[i].avg_loss, hist32[i].avg_loss, 0.15);
}

// Fabric and in-process rounds must stay bitwise identical in half mode:
// quantization happens before the wire, and the half round-trip is exact.
TEST(MixedPrecisionE2E, FabricMatchesInProcessBitwiseInHalfMode) {
  auto data = mp_dataset();
  auto run = [&](bool fabric) {
    Rng rng(7);
    Model init(ModelSpec::conv(1, 8, 4, 3, {4, 6}, {1, 1}, {1, 2}), rng);
    FlRunConfig cfg = mp_config();
    cfg.rounds = 3;
    cfg.use_fabric = fabric;
    cfg.local.precision.dtype = Dtype::F16;
    FedAvgRunner runner(init, data, mp_fleet(data.num_clients()), cfg);
    runner.run();
    return std::make_pair(runner.history(), runner.model().weights());
  };
  auto [hist_ip, w_ip] = run(false);
  auto [hist_fb, w_fb] = run(true);

  ASSERT_EQ(hist_ip.size(), hist_fb.size());
  for (std::size_t i = 0; i < hist_ip.size(); ++i)
    EXPECT_EQ(hist_ip[i].avg_loss, hist_fb[i].avg_loss);
  ASSERT_EQ(w_ip.size(), w_fb.size());
  for (std::size_t t = 0; t < w_ip.size(); ++t)
    for (std::int64_t i = 0; i < w_ip[t].numel(); ++i)
      ASSERT_EQ(w_ip[t][i], w_fb[t][i]) << "tensor " << t;
}

}  // namespace
}  // namespace fedtrans
