#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "data/dataset.hpp"

namespace fedtrans {
namespace {

DatasetConfig small_cfg() {
  DatasetConfig cfg;
  cfg.num_classes = 6;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = 20;
  cfg.mean_train_samples = 20;
  cfg.min_train_samples = 6;
  cfg.eval_samples = 5;
  cfg.seed = 77;
  return cfg;
}

TEST(Dataset, ShapesAndLabelRanges) {
  auto ds = FederatedDataset::generate(small_cfg());
  EXPECT_EQ(ds.num_clients(), 20);
  for (int c = 0; c < ds.num_clients(); ++c) {
    const auto& cd = ds.client(c);
    EXPECT_GE(cd.train_size(), 6);
    EXPECT_EQ(cd.eval_size(), 5);
    EXPECT_EQ(cd.x_train.shape(),
              (std::vector<int>{cd.train_size(), 1, 8, 8}));
    for (int y : cd.y_train) {
      EXPECT_GE(y, 0);
      EXPECT_LT(y, 6);
    }
  }
}

TEST(Dataset, DeterministicForSeed) {
  auto a = FederatedDataset::generate(small_cfg());
  auto b = FederatedDataset::generate(small_cfg());
  EXPECT_EQ(a.client(3).y_train, b.client(3).y_train);
  EXPECT_EQ(a.client(3).x_train[10], b.client(3).x_train[10]);
}

TEST(Dataset, DifferentSeedsDiffer) {
  auto cfg = small_cfg();
  auto a = FederatedDataset::generate(cfg);
  cfg.seed = 78;
  auto b = FederatedDataset::generate(cfg);
  EXPECT_NE(a.client(0).x_train[0], b.client(0).x_train[0]);
}

// Label skew must increase as the Dirichlet concentration h decreases —
// exactly the paper's Fig. 13 heterogeneity protocol.
class DirichletSkewTest : public ::testing::TestWithParam<double> {};

double mean_label_entropy(const FederatedDataset& ds) {
  double total = 0.0;
  for (int c = 0; c < ds.num_clients(); ++c) {
    const auto hist = ds.label_histogram(c);
    double n = 0.0;
    for (int h : hist) n += h;
    double ent = 0.0;
    for (int h : hist)
      if (h > 0) {
        const double p = h / n;
        ent -= p * std::log(p);
      }
    total += ent;
  }
  return total / ds.num_clients();
}

TEST_P(DirichletSkewTest, EntropyIncreasesWithH) {
  auto cfg = small_cfg();
  cfg.num_clients = 40;
  cfg.dirichlet_h = GetParam();
  const double ent_low = mean_label_entropy(FederatedDataset::generate(cfg));
  cfg.dirichlet_h = GetParam() * 50.0;
  const double ent_high = mean_label_entropy(FederatedDataset::generate(cfg));
  EXPECT_LT(ent_low, ent_high);
}

INSTANTIATE_TEST_SUITE_P(Concentrations, DirichletSkewTest,
                         ::testing::Values(0.1, 0.3, 0.5));

TEST(Dataset, PooledConcatenatesEverything) {
  auto ds = FederatedDataset::generate(small_cfg());
  auto pooled = ds.pooled();
  int train = 0, eval = 0;
  for (int c = 0; c < ds.num_clients(); ++c) {
    train += ds.client(c).train_size();
    eval += ds.client(c).eval_size();
  }
  EXPECT_EQ(pooled.train_size(), train);
  EXPECT_EQ(pooled.eval_size(), eval);
  // Last client's last sample must appear at the end.
  const auto& last = ds.client(ds.num_clients() - 1);
  EXPECT_EQ(pooled.y_train.back(), last.y_train.back());
}

TEST(Dataset, SampleBatchShapesAndMembership) {
  auto ds = FederatedDataset::generate(small_cfg());
  Rng rng(1);
  Tensor x;
  std::vector<int> y;
  sample_batch(ds.client(0), 7, rng, x, y);
  EXPECT_EQ(x.shape(), (std::vector<int>{7, 1, 8, 8}));
  ASSERT_EQ(y.size(), 7u);
  for (int label : y) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 6);
  }
}

TEST(Dataset, SampleBatchFromEmptyClientThrows) {
  ClientData empty;
  Rng rng(2);
  Tensor x;
  std::vector<int> y;
  EXPECT_THROW(sample_batch(empty, 4, rng, x, y), Error);
}

TEST(Dataset, ClassesAreSeparable) {
  // Same-class samples must be closer (on average) than cross-class ones —
  // otherwise no model could learn anything.
  auto cfg = small_cfg();
  cfg.noise = 0.3;
  auto ds = FederatedDataset::generate(cfg);
  auto pooled = ds.pooled();
  const auto n = std::min(pooled.train_size(), 120);
  const auto sz = static_cast<std::int64_t>(64);
  double same = 0.0, diff = 0.0;
  int ns = 0, nd = 0;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      double d2 = 0.0;
      for (std::int64_t k = 0; k < sz; ++k) {
        const double d =
            pooled.x_train[i * sz + k] - pooled.x_train[j * sz + k];
        d2 += d * d;
      }
      if (pooled.y_train[static_cast<std::size_t>(i)] ==
          pooled.y_train[static_cast<std::size_t>(j)]) {
        same += d2;
        ++ns;
      } else {
        diff += d2;
        ++nd;
      }
    }
  ASSERT_GT(ns, 0);
  ASSERT_GT(nd, 0);
  EXPECT_LT(same / ns, diff / nd);
}

TEST(Dataset, LabelHistogramSumsToTrainSize) {
  auto ds = FederatedDataset::generate(small_cfg());
  for (int c = 0; c < ds.num_clients(); ++c) {
    const auto h = ds.label_histogram(c);
    int total = 0;
    for (int v : h) total += v;
    EXPECT_EQ(total, ds.client(c).train_size());
  }
}

}  // namespace
}  // namespace fedtrans
