#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "baselines/fluid.hpp"
#include "baselines/hetero_fl.hpp"
#include "baselines/split_mix.hpp"
#include "core/trainer.hpp"
#include "model/align.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

DatasetConfig tiny_data(int clients = 12) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 22;
  cfg.min_train_samples = 10;
  cfg.eval_samples = 8;
  cfg.noise = 0.35;
  cfg.seed = 9;
  return cfg;
}

std::vector<DeviceProfile> fleet_with_capacity(int n, double macs) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.sigma_compute = 0.8;
  cfg.seed = 4;
  cfg.with_median_capacity(macs);
  return sample_fleet(cfg);
}

FedTransConfig fast_cfg() {
  FedTransConfig cfg;
  cfg.rounds = 14;
  cfg.clients_per_round = 5;
  cfg.local.steps = 6;
  cfg.local.batch = 8;
  cfg.gamma = 2;
  cfg.doc_delta = 2;
  cfg.beta = 10.0;  // elbow always "reached": forces transformation early
  cfg.act_window = 2;
  cfg.max_models = 3;
  cfg.seed = 21;
  return cfg;
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

TEST(FedTransTrainer, SpawnsModelsWhenElbowForced) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  FedTransTrainer trainer(tiny_model(), data, fleet, fast_cfg());
  trainer.run();
  EXPECT_GE(trainer.num_models(), 2);
  EXPECT_EQ(trainer.transforms_done(), trainer.num_models() - 1);
  // Children are strictly larger.
  for (int i = 1; i < trainer.num_models(); ++i)
    EXPECT_GT(trainer.model(i).macs(), trainer.model(i - 1).macs());
}

TEST(FedTransTrainer, NoTransformWhenDisabled) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  auto cfg = fast_cfg();
  cfg.enable_transform = false;
  FedTransTrainer trainer(tiny_model(), data, fleet, cfg);
  trainer.run();
  EXPECT_EQ(trainer.num_models(), 1);
}

TEST(FedTransTrainer, RespectsMaxModels) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 1e9);
  auto cfg = fast_cfg();
  cfg.rounds = 20;
  cfg.max_models = 2;
  FedTransTrainer trainer(tiny_model(), data, fleet, cfg);
  trainer.run();
  EXPECT_LE(trainer.num_models(), 2);
}

TEST(FedTransTrainer, StopsGrowingAtFleetCeiling) {
  auto data = FederatedDataset::generate(tiny_data());
  // Tight fleet: even one doubling overshoots every device.
  Rng tmp(1);
  const double m0 = static_cast<double>(Model(tiny_model(), tmp).macs());
  std::vector<DeviceProfile> fleet(static_cast<std::size_t>(data.num_clients()));
  for (auto& d : fleet) {
    d.compute_macs_per_s = 1e8;
    d.bandwidth_bytes_per_s = 1e6;
    d.capacity_macs = m0 * 1.05;
  }
  FedTransTrainer trainer(tiny_model(), data, fleet, fast_cfg());
  trainer.run();
  EXPECT_EQ(trainer.num_models(), 1);  // child would exceed every client
}

TEST(FedTransTrainer, NeverAssignsIncompatibleModels) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  FedTransTrainer trainer(tiny_model(), data, fleet, fast_cfg());
  trainer.run();
  auto ev = trainer.evaluate_final();
  const auto& cm = trainer.client_manager();
  for (int c = 0; c < data.num_clients(); ++c) {
    const int k = ev.client_model[static_cast<std::size_t>(c)];
    if (k == 0) continue;  // initial model is the sanctioned fallback
    EXPECT_LE(static_cast<double>(trainer.model(k).macs()), cm.capacity(c));
  }
}

TEST(FedTransTrainer, LearnsAndReportsCosts) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  auto cfg = fast_cfg();
  cfg.rounds = 18;
  cfg.local.steps = 10;
  FedTransTrainer trainer(tiny_model(), data, fleet, cfg);
  trainer.run();
  auto ev = trainer.evaluate_final();
  EXPECT_GT(ev.mean_accuracy, 0.3);  // 4 classes, random = 0.25
  EXPECT_GT(trainer.costs().total_macs(), 0.0);
  EXPECT_GT(trainer.costs().network_bytes(), 0.0);
  EXPECT_GT(trainer.costs().storage_bytes(), 0.0);
  EXPECT_EQ(trainer.history().size(), 18u);
  EXPECT_EQ(ev.client_accuracy.size(),
            static_cast<std::size_t>(data.num_clients()));
}

TEST(FedTransTrainer, AblationFlagsAllRun) {
  auto data = FederatedDataset::generate(tiny_data(8));
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  for (int variant = 0; variant < 5; ++variant) {
    auto cfg = fast_cfg();
    cfg.rounds = 8;
    cfg.enable_layer_selection = variant < 1;
    cfg.enable_soft_agg = variant < 2;
    cfg.enable_warmup = variant < 3;
    cfg.enable_decay = variant < 4;
    cfg.enable_l2s = variant == 4;
    FedTransTrainer trainer(tiny_model(), data, fleet, cfg);
    EXPECT_NO_THROW(trainer.run()) << "variant " << variant;
    EXPECT_NO_THROW(trainer.evaluate_final());
  }
}

TEST(FedTransTrainer, DeterministicForSeed) {
  auto data = FederatedDataset::generate(tiny_data(8));
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  auto cfg = fast_cfg();
  cfg.rounds = 6;
  FedTransTrainer a(tiny_model(), data, fleet, cfg);
  FedTransTrainer b(tiny_model(), data, fleet, cfg);
  a.run();
  b.run();
  EXPECT_EQ(a.num_models(), b.num_models());
  EXPECT_DOUBLE_EQ(a.evaluate_final().mean_accuracy,
                   b.evaluate_final().mean_accuracy);
}

// ----------------------------------------------------------- HeteroFL ---

TEST(HeteroFL, SubmodelIsPrefixCropOfGlobal) {
  auto data = FederatedDataset::generate(tiny_data(6));
  auto fleet = fleet_with_capacity(data.num_clients(), 1e6);
  BaselineConfig cfg;
  cfg.rounds = 2;
  HeteroFLRunner runner(ModelSpec::conv(1, 8, 4, 8, {8, 16}), data, fleet,
                        cfg);
  Model sub = runner.submodel(1);  // half width
  auto pairs = align_params(sub, runner.global());
  ASSERT_FALSE(pairs.empty());
  for (auto& p : pairs)
    for_each_overlap(*p.dst, *p.src, [&](std::int64_t di, std::int64_t si) {
      EXPECT_EQ((*p.dst)[di], (*p.src)[si]);
    });
}

TEST(HeteroFL, LevelAssignmentFitsCapacity) {
  auto data = FederatedDataset::generate(tiny_data(10));
  auto fleet = fleet_with_capacity(data.num_clients(), 3e5);
  BaselineConfig cfg;
  HeteroFLRunner runner(ModelSpec::conv(1, 8, 4, 8, {8, 16}), data, fleet,
                        cfg);
  for (int c = 0; c < data.num_clients(); ++c) {
    const int lvl = runner.level_for(c);
    Model sub = runner.submodel(lvl);
    if (lvl < runner.num_levels() - 1) {  // deepest level is the fallback
      EXPECT_LE(static_cast<double>(sub.macs()),
                fleet[static_cast<std::size_t>(c)].capacity_macs);
    }
  }
}

TEST(HeteroFL, TrainsAndImproves) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 2e6);
  BaselineConfig cfg;
  cfg.rounds = 12;
  cfg.clients_per_round = 5;
  cfg.local.steps = 8;
  cfg.local.batch = 8;
  HeteroFLRunner runner(ModelSpec::conv(1, 8, 4, 6, {8, 12}), data, fleet,
                        cfg);
  auto before = runner.report().mean_accuracy;
  runner.run();
  auto rep = runner.report();
  EXPECT_GT(rep.mean_accuracy, before);
  EXPECT_GT(rep.costs.total_macs(), 0.0);
}

// ----------------------------------------------------------- SplitMix ---

TEST(SplitMix, BudgetClampedToBaseCount) {
  auto data = FederatedDataset::generate(tiny_data(6));
  auto fleet = fleet_with_capacity(data.num_clients(), 1e8);
  BaselineConfig cfg;
  SplitMixRunner runner(ModelSpec::conv(1, 8, 4, 8, {8, 16}), data, fleet,
                        cfg, /*num_bases=*/4);
  for (int c = 0; c < data.num_clients(); ++c) {
    EXPECT_GE(runner.budget_for(c), 1);
    EXPECT_LE(runner.budget_for(c), 4);
  }
}

TEST(SplitMix, TrainsAndReports) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 2e6);
  BaselineConfig cfg;
  cfg.rounds = 8;
  cfg.clients_per_round = 4;
  cfg.local.steps = 6;
  SplitMixRunner runner(ModelSpec::conv(1, 8, 4, 8, {8, 16}), data, fleet,
                        cfg, 4);
  runner.run();
  auto rep = runner.report();
  EXPECT_EQ(rep.client_accuracy.size(),
            static_cast<std::size_t>(data.num_clients()));
  EXPECT_GT(rep.costs.network_bytes(), 0.0);
}

// -------------------------------------------------------------- FLuID ---

TEST(Fluid, RatioRespectsCapacityGrid) {
  auto data = FederatedDataset::generate(tiny_data(8));
  auto fleet = fleet_with_capacity(data.num_clients(), 5e5);
  BaselineConfig cfg;
  FluidRunner runner(ModelSpec::conv(1, 8, 4, 8, {8, 16}), data, fleet, cfg);
  for (int c = 0; c < data.num_clients(); ++c) {
    const double r = runner.ratio_for(c);
    EXPECT_GE(r, 0.05);
    EXPECT_LE(r, 1.0);
  }
}

TEST(Fluid, ExtractFullRatioEqualsGlobal) {
  auto data = FederatedDataset::generate(tiny_data(6));
  auto fleet = fleet_with_capacity(data.num_clients(), 1e9);
  BaselineConfig cfg;
  FluidRunner runner(ModelSpec::conv(1, 8, 4, 6, {8, 12}), data, fleet, cfg);
  // Every client's ratio is 1.0 under this fleet: extraction = identity.
  Rng rng(3);
  Tensor x({2, 1, 8, 8});
  x.randn(rng);
  // ratio 1.0 keeps all channels; outputs must match the global model.
  for (int c = 0; c < 2; ++c) {
    ASSERT_DOUBLE_EQ(runner.ratio_for(c), 1.0);
  }
  runner.run_round();  // also exercises merge with full coverage
  EXPECT_EQ(runner.report().client_accuracy.size(),
            static_cast<std::size_t>(data.num_clients()));
}

TEST(Fluid, TrainsAndImproves) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 2e6);
  BaselineConfig cfg;
  cfg.rounds = 12;
  cfg.clients_per_round = 5;
  cfg.local.steps = 8;
  FluidRunner runner(ModelSpec::conv(1, 8, 4, 6, {8, 12}), data, fleet, cfg);
  auto before = runner.report().mean_accuracy;
  runner.run();
  EXPECT_GT(runner.report().mean_accuracy, before);
}

TEST(Fluid, RejectsNonConvModels) {
  auto data = FederatedDataset::generate(tiny_data(6));
  auto fleet = fleet_with_capacity(data.num_clients(), 1e6);
  BaselineConfig cfg;
  EXPECT_THROW(
      FluidRunner(ModelSpec::mlp(64, 4, 8, {16}), data, fleet, cfg), Error);
}

}  // namespace
}  // namespace fedtrans
