#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace fedtrans {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBothEnds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double m = sum / n;
  const double v = sum2 / n - m * m;
  EXPECT_NEAR(m, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(v), 3.0, 0.15);
}

TEST(Rng, DirichletSumsToOneAndPositive) {
  Rng rng(17);
  for (double alpha : {0.1, 0.5, 1.0, 10.0}) {
    const auto p = rng.dirichlet(alpha, 8);
    ASSERT_EQ(p.size(), 8u);
    double s = 0.0;
    for (double x : p) {
      EXPECT_GT(x, 0.0);
      s += x;
    }
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletConcentrationControlsSkew) {
  // Lower alpha => more mass on the top class on average.
  Rng rng(19);
  auto avg_max = [&](double alpha) {
    double s = 0.0;
    for (int i = 0; i < 300; ++i) {
      auto p = rng.dirichlet(alpha, 10);
      s += *std::max_element(p.begin(), p.end());
    }
    return s / 300.0;
  };
  EXPECT_GT(avg_max(0.1), avg_max(10.0) + 0.2);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(23);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(29);
  std::vector<double> w{0.0, 0.0, 0.0, 0.0};
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.categorical(w)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(31);
  for (double shape : {0.5, 2.0, 7.5}) {
    double s = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) s += rng.gamma(shape);
    EXPECT_NEAR(s / n, shape, 0.1 * shape + 0.05);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), w.begin()));
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(41);
  Rng child = a.fork();
  // The child stream differs from the parent's continuation.
  EXPECT_NE(a.next_u64(), child.next_u64());
}

}  // namespace
}  // namespace fedtrans
