// Tests for uplink delta compression: top-k sparsification, uniform
// quantization, error feedback, and the FedAvgRunner integration (network
// accounting + accuracy under compression).

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/check.hpp"
#include "fl/compression.hpp"
#include "fl/runner.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

WeightSet make_delta(std::vector<std::vector<float>> tensors) {
  WeightSet ws;
  for (auto& vals : tensors) {
    const int n = static_cast<int>(vals.size());
    ws.push_back(Tensor::from({n}, std::move(vals)));
  }
  return ws;
}

std::int64_t count_nonzero(const WeightSet& ws) {
  std::int64_t n = 0;
  for (const Tensor& t : ws)
    for (std::int64_t i = 0; i < t.numel(); ++i)
      if (t[i] != 0.0f) ++n;
  return n;
}

// -------------------------------------------------------------------- topk

TEST(TopKCompressionTest, KeepsExactlyKLargestMagnitudes) {
  auto ws = make_delta({{0.1f, -5.0f, 0.2f, 3.0f}, {-0.3f, 4.0f, 0.05f,
                                                    -2.0f}});
  TopKCompression comp(0.5);  // 8 entries → keep 4
  comp.compress(ws);
  EXPECT_EQ(count_nonzero(ws), 4);
  // Survivors are the four largest magnitudes: −5, 4, 3, −2.
  EXPECT_EQ(ws[0][1], -5.0f);
  EXPECT_EQ(ws[0][3], 3.0f);
  EXPECT_EQ(ws[1][1], 4.0f);
  EXPECT_EQ(ws[1][3], -2.0f);
  EXPECT_EQ(ws[0][0], 0.0f);
}

TEST(TopKCompressionTest, TiesResolveToExactlyK) {
  auto ws = make_delta({{1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f}});
  TopKCompression comp(0.25);  // keep 2 of 8 equal values
  comp.compress(ws);
  EXPECT_EQ(count_nonzero(ws), 2);
}

TEST(TopKCompressionTest, RatioOneIsIdentity) {
  auto ws = make_delta({{1.0f, -2.0f, 3.0f}});
  auto copy = ws;
  TopKCompression comp(1.0);
  comp.compress(ws);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(ws[0][i], copy[0][i]);
}

TEST(TopKCompressionTest, AtLeastOneSurvives) {
  auto ws = make_delta({{0.5f, 0.25f, 0.1f, 0.9f}});
  TopKCompression comp(0.01);  // 0.04 entries → floor 0, clamped to 1
  comp.compress(ws);
  EXPECT_EQ(count_nonzero(ws), 1);
  EXPECT_EQ(ws[0][3], 0.9f);
}

TEST(TopKCompressionTest, BytesScaleWithRatio) {
  TopKCompression tenth(0.1), half(0.5);
  WeightSet ws{Tensor({1000})};
  EXPECT_EQ(tenth.compressed_bytes(ws), 8.0 * 100);
  EXPECT_EQ(half.compressed_bytes(ws), 8.0 * 500);
  // Dense fp32 equivalent is 4000 bytes: 10% top-k saves 5×.
  NoCompression none;
  EXPECT_LT(tenth.compressed_bytes(ws), none.compressed_bytes(ws));
}

TEST(TopKCompressionTest, RejectsInvalidRatio) {
  EXPECT_THROW(TopKCompression(0.0), Error);
  EXPECT_THROW(TopKCompression(1.5), Error);
}

// ------------------------------------------------------------ quantization

TEST(UniformQuantizationTest, ErrorBoundedByHalfStep) {
  Rng rng(3);
  WeightSet ws{Tensor({64})};
  ws[0].randn(rng, 1.0f);
  WeightSet orig = ws;
  UniformQuantization comp(8);
  comp.compress(ws);
  float mx = 0.0f;
  for (std::int64_t i = 0; i < 64; ++i)
    mx = std::max(mx, std::fabs(orig[0][i]));
  const float step = mx / 127.0f;
  for (std::int64_t i = 0; i < 64; ++i)
    EXPECT_LE(std::fabs(ws[0][i] - orig[0][i]), step / 2.0f + 1e-6f);
}

TEST(UniformQuantizationTest, PreservesZeroTensor) {
  WeightSet ws{Tensor({8})};
  UniformQuantization comp(4);
  comp.compress(ws);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(ws[0][i], 0.0f);
}

TEST(UniformQuantizationTest, FourBitIsCoarserThanEight) {
  Rng rng(4);
  WeightSet ws{Tensor({256})};
  ws[0].randn(rng, 1.0f);
  WeightSet w8 = ws, w4 = ws;
  UniformQuantization q8(8), q4(4);
  q8.compress(w8);
  q4.compress(w4);
  double err8 = 0.0, err4 = 0.0;
  for (std::int64_t i = 0; i < 256; ++i) {
    err8 += std::fabs(w8[0][i] - ws[0][i]);
    err4 += std::fabs(w4[0][i] - ws[0][i]);
  }
  EXPECT_LT(err8, err4);
}

TEST(UniformQuantizationTest, BytesMatchBitWidth) {
  UniformQuantization q8(8);
  WeightSet ws{Tensor({100}), Tensor({50})};
  q8.compress(ws);
  // 150 params × 1 byte + 2 scales × 4 bytes.
  EXPECT_EQ(q8.compressed_bytes(ws), 150.0 + 8.0);
}

TEST(UniformQuantizationTest, BillingIsPureAndOrderIndependent) {
  // compressed_bytes is a pure function of the delta handed in — one
  // shared compressor instance bills a two-tensor delta identically whether
  // queried cold, after compressing a one-tensor delta, or concurrently
  // from many threads (the regression: the tensor count used to be cached
  // from the last compress() call).
  UniformQuantization q8(8);
  WeightSet two{Tensor({100}), Tensor({50})};
  WeightSet one{Tensor({64})};
  const double cold = q8.compressed_bytes(two);
  EXPECT_EQ(cold, 150.0 + 8.0);

  q8.compress(one);  // would have clobbered the cached tensor count
  EXPECT_EQ(q8.compressed_bytes(two), cold);
  q8.compress(two);
  EXPECT_EQ(q8.compressed_bytes(one), 64.0 + 4.0);

  // Thread sweep: interleaved compress/bill on one shared instance from
  // several threads must produce the same per-shape bills every time.
  std::vector<double> bills(16);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w)
    workers.emplace_back([&, w] {
      for (int i = 0; i < 4; ++i) {
        WeightSet mine = (w + i) % 2 == 0
                             ? WeightSet{Tensor({100}), Tensor({50})}
                             : WeightSet{Tensor({64})};
        q8.compress(mine);
        bills[static_cast<std::size_t>(w * 4 + i)] =
            q8.compressed_bytes(mine);
      }
    });
  for (auto& t : workers) t.join();
  for (int w = 0; w < 4; ++w)
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(bills[static_cast<std::size_t>(w * 4 + i)],
                (w + i) % 2 == 0 ? 150.0 + 8.0 : 64.0 + 4.0)
          << "worker " << w << " iteration " << i;
}

TEST(UniformQuantizationTest, RejectsInvalidBits) {
  EXPECT_THROW(UniformQuantization(0), Error);
  EXPECT_THROW(UniformQuantization(17), Error);
}

// ---------------------------------------------------------- error feedback

TEST(ErrorFeedbackTest, ResidualIsDroppedMass) {
  auto ws = make_delta({{5.0f, 0.1f}});
  ErrorFeedback ef;
  const WeightSet pre = ws;
  TopKCompression comp(0.5);
  comp.compress(ws);  // keeps 5.0, drops 0.1
  ef.store_residual(7, pre, ws);
  ASSERT_TRUE(ef.has_residual(7));

  auto next = make_delta({{0.0f, 0.0f}});
  ef.add_residual(7, next);
  EXPECT_EQ(next[0][0], 0.0f);
  EXPECT_NEAR(next[0][1], 0.1f, 1e-6f);
}

TEST(ErrorFeedbackTest, UnknownClientIsNoop) {
  ErrorFeedback ef;
  auto ws = make_delta({{1.0f}});
  ef.add_residual(3, ws);
  EXPECT_EQ(ws[0][0], 1.0f);
  EXPECT_FALSE(ef.has_residual(3));
}

TEST(ErrorFeedbackTest, ShapeDriftResetsResidualInsteadOfFoldingGarbage) {
  // A returning client whose model spec changed between participations
  // presents deltas whose shapes no longer match the stored residual —
  // both hooks must reset the residual (loudly), never fold or store a
  // cross-shape difference.
  ErrorFeedback ef;
  ef.store_residual(5, make_delta({{1.0f, 2.0f}}),
                    make_delta({{0.5f, 2.0f}}));
  ASSERT_TRUE(ef.has_residual(5));

  // add_residual with a drifted delta: the delta passes through untouched
  // and the stale residual is dropped.
  auto wider = make_delta({{1.0f, 1.0f, 1.0f}});
  ef.add_residual(5, wider);
  EXPECT_EQ(wider[0][0], 1.0f);
  EXPECT_EQ(wider[0][1], 1.0f);
  EXPECT_EQ(wider[0][2], 1.0f);
  EXPECT_FALSE(ef.has_residual(5));

  // store_residual with mismatched pre/post shapes: nothing is stored and
  // any prior residual is cleared.
  ef.store_residual(9, make_delta({{1.0f}}), make_delta({{0.5f}}));
  ASSERT_TRUE(ef.has_residual(9));
  ef.store_residual(9, make_delta({{1.0f, 2.0f}}), make_delta({{0.5f}}));
  EXPECT_FALSE(ef.has_residual(9));

  // Same tensor count but different per-tensor shapes is still a drift —
  // the old tensor-count check used to let this through.
  ef.store_residual(2, make_delta({{1.0f, 2.0f}}),
                    make_delta({{0.5f, 1.0f}}));
  ASSERT_TRUE(ef.has_residual(2));
  auto reshaped = make_delta({{0.0f, 0.0f, 0.0f}});
  ef.add_residual(2, reshaped);
  EXPECT_FALSE(ef.has_residual(2));
  ef.store_residual(2, make_delta({{1.0f, 2.0f, 3.0f}}),
                    make_delta({{0.5f}}));
  EXPECT_FALSE(ef.has_residual(2));
}

TEST(ErrorFeedbackTest, MassConservation) {
  // EF's defining invariant: at every round,
  //   Σ uploads + current residual == Σ dense deltas.
  // Nothing the compressor drops is ever lost — it stays in the residual
  // until a later round's budget admits it.
  ErrorFeedback ef;
  TopKCompression comp(0.5);
  WeightSet uploaded_sum = make_delta({{0.0f, 0.0f}});
  WeightSet dense_sum = make_delta({{0.0f, 0.0f}});
  for (int round = 0; round < 6; ++round) {
    auto delta = make_delta({{1.0f, 0.4f}});
    ws_add(dense_sum, delta);
    ef.add_residual(0, delta);
    const WeightSet pre = delta;
    comp.compress(delta);
    ef.store_residual(0, pre, delta);
    ws_add(uploaded_sum, delta);

    // Reconstruct the residual via the public API to check conservation.
    auto residual_probe = make_delta({{0.0f, 0.0f}});
    ef.add_residual(0, residual_probe);
    for (std::int64_t i = 0; i < 2; ++i)
      EXPECT_NEAR(uploaded_sum[0][i] + residual_probe[0][i], dense_sum[0][i],
                  1e-5f)
          << "round " << round << " coord " << i;
  }
  // And the starved coordinate is eventually transmitted.
  EXPECT_GT(uploaded_sum[0][1], 0.0f);
}

// -------------------------------------------------------------- runner use

DatasetConfig tiny_data(int clients = 10) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 20;
  cfg.min_train_samples = 10;
  cfg.eval_samples = 8;
  cfg.noise = 0.35;
  cfg.seed = 13;
  return cfg;
}

std::vector<DeviceProfile> tiny_fleet(int n) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.seed = 4;
  cfg.with_median_capacity(5e6);
  return sample_fleet(cfg);
}

TEST(CompressedRunnerTest, TopKSlashesUplinkBytes) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(21);
  Model init(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);

  FlRunConfig dense_cfg;
  dense_cfg.rounds = 4;
  dense_cfg.clients_per_round = 4;
  dense_cfg.local.steps = 2;
  dense_cfg.local.batch = 6;
  FedAvgRunner dense(init, data, fleet, dense_cfg);
  dense.run();

  FlRunConfig comp_cfg = dense_cfg;
  comp_cfg.compression = CompressionKind::TopK;
  comp_cfg.topk_ratio = 0.05;
  FedAvgRunner compressed(init, data, fleet, comp_cfg);
  compressed.run();

  EXPECT_LT(compressed.costs().network_bytes(),
            0.7 * dense.costs().network_bytes())
      << "5% top-k should cut total transfer substantially";
}

TEST(CompressedRunnerTest, QuantizedTrainingStillLearns) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(22);
  Model init(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);

  FlRunConfig cfg;
  cfg.rounds = 20;
  cfg.clients_per_round = 5;
  cfg.local.steps = 6;
  cfg.local.batch = 8;
  cfg.compression = CompressionKind::Quant8;
  FedAvgRunner runner(init, data, fleet, cfg);
  FedAvgRunner probe(init, data, fleet, cfg);
  const double acc0 = probe.mean_client_accuracy();
  runner.run();
  EXPECT_GT(runner.mean_client_accuracy(), acc0 + 0.15);
}

TEST(CompressedRunnerTest, ErrorFeedbackImprovesAggressiveTopK) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = tiny_fleet(data.num_clients());
  Rng rng(23);
  Model init(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);

  FlRunConfig cfg;
  cfg.rounds = 25;
  cfg.clients_per_round = 5;
  cfg.local.steps = 6;
  cfg.local.batch = 8;
  cfg.compression = CompressionKind::TopK;
  cfg.topk_ratio = 0.02;  // aggressive: 2% of coordinates per round

  FedAvgRunner without(init, data, fleet, cfg);
  without.run();
  cfg.error_feedback = true;
  FedAvgRunner with(init, data, fleet, cfg);
  with.run();

  // EF must not hurt, and final train loss should improve (accuracy at this
  // scale is noisy, loss is the steadier signal).
  const double loss_without = without.history().back().avg_loss;
  const double loss_with = with.history().back().avg_loss;
  EXPECT_LE(loss_with, loss_without + 0.05);
}

}  // namespace
}  // namespace fedtrans
