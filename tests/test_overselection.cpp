// Tests for deadline-based over-selection (FedScale-style over-commit):
// the synchronous-round straggler remedy that complements FedTrans's
// capacity-aware assignment (paper Appendix C).

#include <gtest/gtest.h>

#include "fl/runner.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

DatasetConfig tiny_data(int clients = 14) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 18;
  cfg.min_train_samples = 10;
  cfg.eval_samples = 8;
  cfg.noise = 0.35;
  cfg.seed = 41;
  return cfg;
}

std::vector<DeviceProfile> long_tail_fleet(int n) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.sigma_compute = 1.8;  // heavy straggler tail
  cfg.seed = 4;
  cfg.with_median_capacity(5e6);
  return sample_fleet(cfg);
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

FlRunConfig base_cfg() {
  FlRunConfig cfg;
  cfg.rounds = 6;
  cfg.clients_per_round = 6;
  cfg.local.steps = 3;
  cfg.local.batch = 6;
  cfg.seed = 11;
  return cfg;
}

TEST(OverSelectionTest, DefaultConfigReproducesLegacyRunExactly) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = long_tail_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FedAvgRunner a(init, data, fleet, base_cfg());
  a.run();
  FlRunConfig explicit_defaults = base_cfg();
  explicit_defaults.overcommit = 0.0;
  explicit_defaults.deadline_quantile = 1.0;
  FedAvgRunner b(init, data, fleet, explicit_defaults);
  b.run();

  auto wa = a.model().weights();
  auto wb = b.model().weights();
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0);
}

TEST(OverSelectionTest, DeadlineCutsRoundTime) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = long_tail_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FedAvgRunner plain(init, data, fleet, base_cfg());
  plain.run();
  double plain_wall = 0.0;
  for (const auto& rec : plain.history()) plain_wall += rec.round_time_s;

  FlRunConfig oc = base_cfg();
  oc.overcommit = 0.5;
  oc.deadline_quantile = 0.7;  // drop the slowest ~30%
  FedAvgRunner fast(init, data, fleet, oc);
  fast.run();
  double fast_wall = 0.0;
  for (const auto& rec : fast.history()) fast_wall += rec.round_time_s;

  EXPECT_LT(fast_wall, plain_wall)
      << "dropping the straggler tail must shorten synchronous rounds";
}

TEST(OverSelectionTest, DroppedClientsAreStillBilled) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = long_tail_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);

  FlRunConfig oc = base_cfg();
  oc.rounds = 3;
  oc.overcommit = 1.0;  // select 2k, aggregate at most k
  oc.deadline_quantile = 0.5;
  FedAvgRunner runner(init, data, fleet, oc);
  runner.run();

  FlRunConfig plain = base_cfg();
  plain.rounds = 3;
  FedAvgRunner reference(init, data, fleet, plain);
  reference.run();

  // Over-commit burns strictly more device compute (late clients train too).
  EXPECT_GT(runner.costs().total_macs(), reference.costs().total_macs());
}

TEST(OverSelectionTest, StillLearnsWithAggressiveDeadline) {
  auto data = FederatedDataset::generate(tiny_data(10));
  auto fleet = long_tail_fleet(10);
  Rng rng(5);
  Model init(tiny_model(), rng);
  FedAvgRunner probe(init, data, fleet, base_cfg());
  const double acc0 = probe.mean_client_accuracy();

  FlRunConfig oc = base_cfg();
  oc.rounds = 22;
  oc.clients_per_round = 5;
  oc.local.steps = 6;
  oc.local.batch = 8;
  oc.overcommit = 0.6;
  oc.deadline_quantile = 0.6;
  FedAvgRunner runner(init, data, fleet, oc);
  runner.run();
  EXPECT_GT(runner.mean_client_accuracy(), acc0 + 0.15);
}

TEST(OverSelectionTest, QuantileOneWithOvercommitTrimsToTargetCount) {
  // With a deadline quantile of 1.0 nobody is late; over-commit must still
  // trim the participant list back to clients_per_round (fastest-first).
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = long_tail_fleet(data.num_clients());
  Rng rng(3);
  Model init(tiny_model(), rng);
  FlRunConfig oc = base_cfg();
  oc.rounds = 1;
  oc.overcommit = 1.0;
  FedAvgRunner runner(init, data, fleet, oc);
  runner.run();
  // k on-time participants uploaded; the over-committed remainder only
  // downloaded. Uplink < downlink in byte accounting proves the trim.
  const double model_bytes =
      static_cast<double>(runner.model().param_bytes());
  const double expected_down =
      model_bytes * (2.0 * base_cfg().clients_per_round);
  EXPECT_NEAR(runner.costs().network_bytes(),
              expected_down + model_bytes * base_cfg().clients_per_round,
              1.0);
}

}  // namespace
}  // namespace fedtrans
