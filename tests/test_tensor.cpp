#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "tensor/tensor.hpp"

namespace fedtrans {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.dim(1), 3);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FromRejectsMismatchedCount) {
  EXPECT_THROW(Tensor::from({2, 2}, {1.0f, 2.0f, 3.0f}), Error);
}

TEST(Tensor, MultiDimIndexingIsRowMajor) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  t.at(0, 1) = 3.0f;
  EXPECT_EQ(t[1], 3.0f);
}

TEST(Tensor, IndexOutOfBoundsThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at(2, 0), Error);
  EXPECT_THROW(t.at(0, 3), Error);
  EXPECT_THROW(t.at(0), Error);  // wrong rank
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), Error);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a = Tensor::from({3}, {1, 2, 3});
  Tensor b = Tensor::from({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_EQ(a[2], 33.0f);
  a.sub_(b);
  EXPECT_EQ(a[1], 2.0f);
  a.mul_(2.0f);
  EXPECT_EQ(a[0], 2.0f);
  a.axpy_(0.5f, b);
  EXPECT_EQ(a[0], 7.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a.add_(b), Error);
  EXPECT_THROW(a.axpy_(1.0f, b), Error);
  EXPECT_THROW(squared_distance(a, b), Error);
}

TEST(Tensor, Reductions) {
  Tensor a = Tensor::from({4}, {1, -2, 3, -4});
  EXPECT_DOUBLE_EQ(a.sum(), -2.0);
  EXPECT_DOUBLE_EQ(a.abs_max(), 4.0);
  EXPECT_NEAR(a.l2_norm(), std::sqrt(30.0), 1e-6);
}

TEST(Tensor, SaveLoadRoundTrip) {
  Rng rng(5);
  Tensor t({3, 4, 2});
  t.randn(rng);
  std::stringstream ss;
  t.save(ss);
  Tensor u = Tensor::load(ss);
  ASSERT_TRUE(u.same_shape(t));
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], u[i]);
}

TEST(Tensor, LoadRejectsGarbage) {
  std::stringstream ss;
  ss << "not a tensor";
  EXPECT_THROW(Tensor::load(ss), Error);
}

// Reference GEMM for validation.
void naive_gemm(bool ta, bool tb, int m, int n, int k, const float* a, int lda,
                const float* b, int ldb, float* c, int ldc) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int p = 0; p < k; ++p) {
        const float av = ta ? a[p * lda + i] : a[i * lda + p];
        const float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        s += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] = static_cast<float>(s);
    }
}

class GemmTransposeTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmTransposeTest, MatchesNaiveReference) {
  const auto [ta, tb] = GetParam();
  const int m = 5, n = 7, k = 4;
  Rng rng(9);
  Tensor a({ta ? k : m, ta ? m : k});
  Tensor b({tb ? n : k, tb ? k : n});
  a.randn(rng);
  b.randn(rng);
  Tensor c({m, n}), ref({m, n});
  gemm(ta, tb, m, n, k, 1.0f, a.data(), a.dim(1), b.data(), b.dim(1), 0.0f,
       c.data(), n);
  naive_gemm(ta, tb, m, n, k, a.data(), a.dim(1), b.data(), b.dim(1),
             ref.data(), n);
  for (std::int64_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-4) << "ta=" << ta << " tb=" << tb;
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTransposeTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Tensor, GemmBetaAccumulates) {
  Tensor a = Tensor::from({1, 1}, {2.0f});
  Tensor b = Tensor::from({1, 1}, {3.0f});
  Tensor c = Tensor::from({1, 1}, {10.0f});
  gemm(false, false, 1, 1, 1, 1.0f, a.data(), 1, b.data(), 1, 1.0f, c.data(),
       1);
  EXPECT_EQ(c[0], 16.0f);  // 10*1 + 2*3
}

TEST(Tensor, MatmulShapeChecks) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), Error);
  Tensor ok({3, 4});
  EXPECT_NO_THROW(matmul(a, ok));
}

TEST(Tensor, MatmulIdentity) {
  Tensor a = Tensor::from({2, 2}, {1, 2, 3, 4});
  Tensor eye = Tensor::from({2, 2}, {1, 0, 0, 1});
  Tensor c = matmul(a, eye);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c[i], a[i]);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(123);
  Tensor t({10000});
  t.randn(rng, 2.0f);
  double m = t.sum() / static_cast<double>(t.numel());
  EXPECT_NEAR(m, 0.0, 0.1);
  EXPECT_NEAR(t.l2_norm() / std::sqrt(static_cast<double>(t.numel())), 2.0,
              0.1);
}

}  // namespace
}  // namespace fedtrans
