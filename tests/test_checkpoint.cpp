// Checkpoint/resume tests: a restored FedTransTrainer must continue
// bit-identically to an uninterrupted run — weights, utilities, costs,
// round history, RNG trajectory and the transformation schedule.

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "core/trainer.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

DatasetConfig tiny_data(int clients = 10) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 20;
  cfg.min_train_samples = 10;
  cfg.eval_samples = 8;
  cfg.noise = 0.35;
  cfg.seed = 31;
  return cfg;
}

std::vector<DeviceProfile> fleet_with_capacity(int n, double macs) {
  FleetConfig cfg;
  cfg.num_devices = n;
  cfg.sigma_compute = 0.8;
  cfg.seed = 4;
  cfg.with_median_capacity(macs);
  return sample_fleet(cfg);
}

FedTransConfig fast_cfg() {
  FedTransConfig cfg;
  cfg.rounds = 12;
  cfg.clients_per_round = 4;
  cfg.local.steps = 4;
  cfg.local.batch = 6;
  cfg.gamma = 2;
  cfg.doc_delta = 2;
  cfg.beta = 10.0;  // forces transformation as soon as DoC is ready
  cfg.act_window = 2;
  cfg.max_models = 3;
  cfg.seed = 77;
  return cfg;
}

ModelSpec tiny_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

void expect_same_state(FedTransTrainer& a, FedTransTrainer& b) {
  ASSERT_EQ(a.num_models(), b.num_models());
  EXPECT_EQ(a.rounds_done(), b.rounds_done());
  EXPECT_EQ(a.transforms_done(), b.transforms_done());
  for (int k = 0; k < a.num_models(); ++k) {
    EXPECT_EQ(a.model(k).spec(), b.model(k).spec()) << "model " << k;
    auto wa = a.model(k).weights();
    auto wb = b.model(k).weights();
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i)
      EXPECT_EQ(testing::max_abs_diff(wa[i], wb[i]), 0.0)
          << "model " << k << " tensor " << i;
  }
  // Utilities drive assignment; they must match exactly too.
  const auto& cma = a.client_manager();
  const auto& cmb = b.client_manager();
  for (int c = 0; c < cma.num_clients(); ++c)
    for (int k = 0; k < a.num_models(); ++k)
      EXPECT_EQ(cma.utility(c, k), cmb.utility(c, k))
          << "client " << c << " model " << k;
  EXPECT_EQ(a.costs().total_macs(), b.costs().total_macs());
  EXPECT_EQ(a.costs().network_bytes(), b.costs().network_bytes());
  EXPECT_EQ(a.costs().storage_bytes(), b.costs().storage_bytes());
  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t i = 0; i < a.history().size(); ++i) {
    EXPECT_EQ(a.history()[i].avg_loss, b.history()[i].avg_loss) << i;
    EXPECT_EQ(a.history()[i].cum_macs, b.history()[i].cum_macs) << i;
  }
}

TEST(CheckpointTest, RoundTripRestoresIdenticalState) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  FedTransTrainer a(tiny_model(), data, fleet, fast_cfg());
  for (int r = 0; r < 6; ++r) a.run_round();

  std::stringstream ss;
  a.save_checkpoint(ss);

  FedTransTrainer b(tiny_model(), data, fleet, fast_cfg());
  b.load_checkpoint(ss);
  expect_same_state(a, b);
}

TEST(CheckpointTest, ResumedRunReplaysBitIdentically) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);

  // Uninterrupted reference: 6 + 6 rounds.
  FedTransTrainer ref(tiny_model(), data, fleet, fast_cfg());
  for (int r = 0; r < 6; ++r) ref.run_round();
  std::stringstream ss;
  ref.save_checkpoint(ss);
  for (int r = 0; r < 6; ++r) ref.run_round();

  // Interrupted run: restore at round 6, then the same 6 more rounds.
  FedTransTrainer resumed(tiny_model(), data, fleet, fast_cfg());
  resumed.load_checkpoint(ss);
  EXPECT_EQ(resumed.rounds_done(), 6);
  for (int r = 0; r < 6; ++r) resumed.run_round();

  expect_same_state(ref, resumed);
}

TEST(CheckpointTest, ResumeContinuesTransformationSchedule) {
  // Checkpoint *before* the first transformation; the resumed run must
  // still spawn models on the same schedule as the reference.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  auto cfg = fast_cfg();

  FedTransTrainer ref(tiny_model(), data, fleet, cfg);
  ref.run_round();
  ref.run_round();
  ASSERT_EQ(ref.num_models(), 1) << "transform fired earlier than expected";
  std::stringstream ss;
  ref.save_checkpoint(ss);
  for (int r = 2; r < cfg.rounds; ++r) ref.run_round();
  ASSERT_GE(ref.num_models(), 2);

  FedTransTrainer resumed(tiny_model(), data, fleet, cfg);
  resumed.load_checkpoint(ss);
  for (int r = 2; r < cfg.rounds; ++r) resumed.run_round();
  expect_same_state(ref, resumed);
}

TEST(CheckpointTest, FileRoundTrip) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  FedTransTrainer a(tiny_model(), data, fleet, fast_cfg());
  for (int r = 0; r < 4; ++r) a.run_round();
  const std::string path = ::testing::TempDir() + "/fedtrans_ckpt.bin";
  a.save_checkpoint_file(path);

  FedTransTrainer b(tiny_model(), data, fleet, fast_cfg());
  b.load_checkpoint_file(path);
  expect_same_state(a, b);
}

TEST(CheckpointTest, RejectsGarbageMagic) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  FedTransTrainer t(tiny_model(), data, fleet, fast_cfg());
  std::stringstream ss;
  ss << "not a checkpoint at all";
  EXPECT_THROW(t.load_checkpoint(ss), Error);
}

TEST(CheckpointTest, RejectsTruncatedStream) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  FedTransTrainer a(tiny_model(), data, fleet, fast_cfg());
  for (int r = 0; r < 3; ++r) a.run_round();
  std::stringstream ss;
  a.save_checkpoint(ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  FedTransTrainer b(tiny_model(), data, fleet, fast_cfg());
  EXPECT_THROW(b.load_checkpoint(cut), Error);
}

TEST(CheckpointTest, RejectsMismatchedSeed) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  FedTransTrainer a(tiny_model(), data, fleet, fast_cfg());
  a.run_round();
  std::stringstream ss;
  a.save_checkpoint(ss);

  auto other = fast_cfg();
  other.seed = 1234;
  FedTransTrainer b(tiny_model(), data, fleet, other);
  EXPECT_THROW(b.load_checkpoint(ss), Error);
}

TEST(CheckpointTest, RejectsMismatchedFleet) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  FedTransTrainer a(tiny_model(), data, fleet, fast_cfg());
  a.run_round();
  std::stringstream ss;
  a.save_checkpoint(ss);

  auto small = FederatedDataset::generate(tiny_data(6));
  auto small_fleet = fleet_with_capacity(6, 5e6);
  FedTransTrainer b(tiny_model(), small, small_fleet, fast_cfg());
  EXPECT_THROW(b.load_checkpoint(ss), Error);
}

TEST(CheckpointTest, MidTrainingEvaluationUnaffectedBySaving) {
  // Saving is a read-only operation: run → save → run must equal run → run.
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 5e6);
  FedTransTrainer a(tiny_model(), data, fleet, fast_cfg());
  FedTransTrainer b(tiny_model(), data, fleet, fast_cfg());
  for (int r = 0; r < 3; ++r) {
    a.run_round();
    std::stringstream ss;
    a.save_checkpoint(ss);  // interleaved saves
    b.run_round();
  }
  expect_same_state(a, b);
}

// ---------------------------------------------------------- scaling policy

TEST(ScalingPolicyTest, WidenOnlyNeverDeepens) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 1e9);
  auto cfg = fast_cfg();
  cfg.scaling_policy = ScalingPolicy::WidenOnly;
  cfg.max_models = 4;
  FedTransTrainer t(tiny_model(), data, fleet, cfg);
  t.run();
  ASSERT_GE(t.num_models(), 2);
  const auto n_cells0 = t.model(0).spec().cells.size();
  for (int k = 1; k < t.num_models(); ++k)
    EXPECT_EQ(t.model(k).spec().cells.size(), n_cells0)
        << "widen-only must not insert cells";
}

TEST(ScalingPolicyTest, DeepenOnlyNeverWidens) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 1e9);
  auto cfg = fast_cfg();
  cfg.scaling_policy = ScalingPolicy::DeepenOnly;
  cfg.max_models = 4;
  FedTransTrainer t(tiny_model(), data, fleet, cfg);
  t.run();
  ASSERT_GE(t.num_models(), 2);
  // Widths of surviving (lineage-matched) cells never change; depth grows.
  for (int k = 1; k < t.num_models(); ++k) {
    EXPECT_GT(t.model(k).spec().cells.size(),
              t.model(k - 1).spec().cells.size());
    for (const auto& cell : t.model(k).spec().cells)
      EXPECT_TRUE(cell.width == 6 || cell.width == 8)
          << "deepen-only must keep the original widths";
  }
}

TEST(ScalingPolicyTest, CompoundAlternatesOperations) {
  auto data = FederatedDataset::generate(tiny_data());
  auto fleet = fleet_with_capacity(data.num_clients(), 1e9);
  auto cfg = fast_cfg();
  cfg.scaling_policy = ScalingPolicy::Compound;
  cfg.max_models = 4;
  FedTransTrainer t(tiny_model(), data, fleet, cfg);
  t.run();
  ASSERT_GE(t.num_models(), 3);
  // Generation 1 widens (fresh cells start un-widened); a later generation
  // must have inserted at least one cell (the deepen half of the cycle).
  bool saw_width_growth = false, saw_depth_growth = false;
  for (int k = 1; k < t.num_models(); ++k) {
    if (t.model(k).spec().cells.size() >
        t.model(k - 1).spec().cells.size())
      saw_depth_growth = true;
    for (const auto& cell : t.model(k).spec().cells)
      if (cell.width > 8) saw_width_growth = true;
  }
  EXPECT_TRUE(saw_width_growth);
  EXPECT_TRUE(saw_depth_growth);
}

TEST(ScalingPolicyTest, NamesAreStable) {
  EXPECT_STREQ(scaling_policy_name(ScalingPolicy::Compound), "compound");
  EXPECT_STREQ(scaling_policy_name(ScalingPolicy::WidenOnly), "widen-only");
  EXPECT_STREQ(scaling_policy_name(ScalingPolicy::DeepenOnly), "deepen-only");
}

}  // namespace
}  // namespace fedtrans
