// Plan-level tests for the ScalingPolicy counterparts (§5.4 ablation):
// the policies steer *which* operation fires, and whatever plan they emit
// must still go through the function-preserving transform machinery — so a
// warm-started child computes the exact same function as its parent,
// regardless of policy.

#include <gtest/gtest.h>

#include "core/transformer.hpp"
#include "model/transform.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

using testing::max_abs_diff;

TransformerOptions opts_with(ScalingPolicy p) {
  TransformerOptions opts;
  opts.alpha = 0.9;
  opts.widen_factor = 2.0;
  opts.deepen_blocks = 1;
  opts.scaling = p;
  return opts;
}

TEST(ScalingPolicyPlanTest, WidenOnlyEmitsOnlyWidenOps) {
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6, 8, 10});
  spec.cells[1].widened_last = true;  // compound would deepen this one
  Rng rng(1);
  auto plan = build_transform_plan(spec, {1.0, 1.0, 1.0},
                                   opts_with(ScalingPolicy::WidenOnly), rng);
  for (const auto& op : plan)
    EXPECT_NE(op.kind, CellOp::Kind::Deepen);
  EXPECT_TRUE(std::any_of(plan.begin(), plan.end(), [](const CellOp& op) {
    return op.kind == CellOp::Kind::Widen;
  }));
}

TEST(ScalingPolicyPlanTest, DeepenOnlyEmitsOnlyDeepenOps) {
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6, 8, 10});
  Rng rng(2);
  auto plan = build_transform_plan(spec, {1.0, 1.0, 1.0},
                                   opts_with(ScalingPolicy::DeepenOnly), rng);
  for (const auto& op : plan)
    EXPECT_NE(op.kind, CellOp::Kind::Widen);
  EXPECT_TRUE(std::any_of(plan.begin(), plan.end(), [](const CellOp& op) {
    return op.kind == CellOp::Kind::Deepen;
  }));
}

TEST(ScalingPolicyPlanTest, CompoundHonoursWidenedLastFlag) {
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6, 8});
  spec.cells[0].widened_last = true;
  spec.cells[1].widened_last = false;
  Rng rng(3);
  auto plan = build_transform_plan(spec, {1.0, 1.0},
                                   opts_with(ScalingPolicy::Compound), rng);
  EXPECT_EQ(plan[0].kind, CellOp::Kind::Deepen);
  EXPECT_EQ(plan[1].kind, CellOp::Kind::Widen);
}

// Whatever plan a policy emits, warm-started children must preserve the
// parent's function exactly.
class PolicyPreservation : public ::testing::TestWithParam<ScalingPolicy> {};

TEST_P(PolicyPreservation, ChildMatchesParentOnRandomInputs) {
  Rng rng(7);
  auto spec = ModelSpec::conv(1, 8, 4, 4, {6, 8});
  Model parent(spec, rng);

  auto plan = build_transform_plan(parent.spec(), {1.0, 0.95},
                                   opts_with(GetParam()), rng);
  Model child = transform_model(parent, plan, 1, "M1", rng,
                                /*warm_start=*/true);
  EXPECT_GT(child.macs(), parent.macs());

  Tensor x({3, 1, 8, 8});
  x.randn(rng, 1.0f);
  Tensor yp = parent.forward(x, false);
  Tensor yc = child.forward(x, false);
  EXPECT_LT(max_abs_diff(yp, yc), 1e-4)
      << scaling_policy_name(GetParam())
      << " plan broke function preservation";
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyPreservation,
                         ::testing::Values(ScalingPolicy::Compound,
                                           ScalingPolicy::WidenOnly,
                                           ScalingPolicy::DeepenOnly),
                         [](const ::testing::TestParamInfo<ScalingPolicy>& i) {
                           std::string n = scaling_policy_name(i.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(ScalingPolicyPlanTest, MlpCellsSupportAllPolicies) {
  Rng rng(9);
  auto spec = ModelSpec::mlp(16, 4, 8, {10, 12});
  Model parent(spec, rng);
  for (ScalingPolicy p : {ScalingPolicy::WidenOnly, ScalingPolicy::DeepenOnly}) {
    auto plan =
        build_transform_plan(parent.spec(), {1.0, 1.0}, opts_with(p), rng);
    Model child = transform_model(parent, plan, 1, "M1", rng, true);
    Tensor x({2, 16});
    x.randn(rng, 1.0f);
    Tensor yp = parent.forward(x, false);
    Tensor yc = child.forward(x, false);
    EXPECT_LT(max_abs_diff(yp, yc), 1e-4) << scaling_policy_name(p);
  }
}

}  // namespace
}  // namespace fedtrans
