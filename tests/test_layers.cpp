#include <gtest/gtest.h>

#include "common/check.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/scale_shift.hpp"
#include "nn/sgd.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

using testing::check_gradients;

TEST(Linear, ForwardMatchesManual) {
  Linear lin(2, 3);
  lin.weight() = Tensor::from({3, 2}, {1, 0, 0, 1, 1, 1});
  lin.bias() = Tensor::from({3}, {0.5f, -0.5f, 0.0f});
  Tensor x = Tensor::from({1, 2}, {2.0f, 3.0f});
  Tensor y = lin.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 5.0f);
}

TEST(Linear, GradientCheck) {
  Rng rng(1);
  Linear lin(5, 4);
  lin.init(rng);
  check_gradients(lin, {3, 5}, rng);
}

TEST(Linear, NoBiasVariant) {
  Rng rng(2);
  Linear lin(4, 3, /*bias=*/false);
  lin.init(rng);
  EXPECT_EQ(lin.params().size(), 1u);
  check_gradients(lin, {2, 4}, rng);
}

TEST(Linear, MacsFormula) {
  Linear lin(7, 9);
  EXPECT_EQ(lin.macs({7}), 63);
  EXPECT_EQ(lin.out_shape({7}), std::vector<int>{9});
}

TEST(Conv2d, IdentityInitPassesThrough) {
  Conv2d conv(3, 3, 3, 1);
  conv.init_identity();
  Rng rng(3);
  Tensor x({2, 3, 5, 5});
  x.randn(rng);
  Tensor y = conv.forward(x, true);
  EXPECT_LT(testing::max_abs_diff(x, y), 1e-6);
}

TEST(Conv2d, GradientCheckStride1) {
  Rng rng(4);
  Conv2d conv(2, 3, 3, 1);
  conv.init(rng);
  check_gradients(conv, {2, 2, 6, 6}, rng);
}

TEST(Conv2d, GradientCheckStride2) {
  Rng rng(5);
  Conv2d conv(2, 2, 3, 2);
  conv.init(rng);
  check_gradients(conv, {2, 2, 8, 8}, rng);
}

TEST(Conv2d, GradientCheckNoPadding) {
  Rng rng(6);
  Conv2d conv(1, 2, 3, 1, /*padding=*/0);
  conv.init(rng);
  check_gradients(conv, {2, 1, 6, 6}, rng);
}

TEST(Conv2d, OutputShapeAndMacs) {
  Conv2d conv(3, 8, 3, 2);  // same padding 1
  const auto out = conv.out_shape({3, 12, 12});
  EXPECT_EQ(out, (std::vector<int>{8, 6, 6}));
  EXPECT_EQ(conv.macs({3, 12, 12}), 3LL * 8 * 9 * 6 * 6);
}

TEST(Conv2d, PatchEmbeddingShape) {
  Conv2d conv(3, 16, 4, 4, 0);  // patch embed: k=s=4, no pad
  EXPECT_EQ(conv.out_shape({3, 12, 12}), (std::vector<int>{16, 3, 3}));
}

TEST(Conv2d, CloneIsIndependentDeepCopy) {
  Rng rng(7);
  Conv2d conv(2, 2, 3);
  conv.init(rng);
  auto copy = conv.clone();
  auto* cc = dynamic_cast<Conv2d*>(copy.get());
  ASSERT_NE(cc, nullptr);
  EXPECT_LT(testing::max_abs_diff(conv.weight(), cc->weight()), 1e-9);
  cc->weight()[0] += 1.0f;
  EXPECT_NE(conv.weight()[0], cc->weight()[0]);
}

TEST(ReLU, ForwardBackwardMasks) {
  ReLU relu;
  Tensor x = Tensor::from({4}, {-1, 0, 2, -3});
  Tensor y = relu.forward(x, true);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor g = Tensor::from({4}, {1, 1, 1, 1});
  Tensor dx = relu.backward(g);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 0.0f);  // gradient at exactly zero is zero
  EXPECT_EQ(dx[2], 1.0f);
}

TEST(ScaleShift, GradientCheck4d) {
  Rng rng(8);
  ScaleShift ss(3);
  ss.scale().randn(rng, 0.5f);
  ss.shift().randn(rng, 0.5f);
  check_gradients(ss, {2, 3, 4, 4}, rng);
}

TEST(ScaleShift, GradientCheck2d) {
  Rng rng(9);
  ScaleShift ss(5);
  ss.scale().randn(rng, 0.5f);
  check_gradients(ss, {3, 5}, rng);
}

TEST(ScaleShift, IdentityByDefault) {
  ScaleShift ss(2);
  Rng rng(10);
  Tensor x({1, 2, 3, 3});
  x.randn(rng);
  Tensor y = ss.forward(x, true);
  EXPECT_LT(testing::max_abs_diff(x, y), 1e-9);
}

TEST(GlobalAvgPool, ForwardAveragesAndBackwardSpreads) {
  GlobalAvgPool gap;
  Tensor x = Tensor::from({1, 2, 1, 2}, {1, 3, 10, 30});
  Tensor y = gap.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 20.0f);
  Tensor g = Tensor::from({1, 2}, {4, 8});
  Tensor dx = gap.backward(g);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 1, 0, 0), 4.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten f;
  Rng rng(11);
  Tensor x({2, 3, 4, 4});
  x.randn(rng);
  Tensor y = f.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 48}));
  Tensor dx = f.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_LT(testing::max_abs_diff(dx, x), 1e-9);
}

TEST(Loss, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  Tensor logits({4, 10});
  std::vector<int> labels{0, 3, 7, 9};
  const double l = loss.forward(logits, labels);
  EXPECT_NEAR(l, std::log(10.0), 1e-5);
}

TEST(Loss, PerfectPredictionLowLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3});
  logits.at(0, 1) = 50.0f;
  logits.at(1, 2) = 50.0f;
  std::vector<int> labels{1, 2};
  EXPECT_LT(loss.forward(logits, labels), 1e-4);
}

TEST(Loss, BackwardIsSoftmaxMinusOneHotOverN) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 2});  // uniform => probs 0.5/0.5
  std::vector<int> labels{0};
  loss.forward(logits, labels);
  Tensor d = loss.backward();
  EXPECT_NEAR(d.at(0, 0), -0.5, 1e-6);
  EXPECT_NEAR(d.at(0, 1), 0.5, 1e-6);
}

TEST(Loss, LabelOutOfRangeThrows) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  std::vector<int> labels{3};
  EXPECT_THROW(loss.forward(logits, labels), Error);
}

TEST(Loss, CountCorrect) {
  Tensor logits = Tensor::from({2, 2}, {5, 1, 1, 5});
  std::vector<int> labels{0, 0};
  EXPECT_EQ(count_correct(logits, labels), 1);
}

TEST(Sgd, PlainStepAppliesLrAndZerosGrad) {
  Linear lin(1, 1, false);
  lin.weight()[0] = 1.0f;
  auto ps = lin.params();
  (*ps[0].grad)[0] = 2.0f;
  Sgd opt(ps, {.lr = 0.1});
  opt.step();
  EXPECT_NEAR(lin.weight()[0], 0.8f, 1e-6);
  EXPECT_EQ((*ps[0].grad)[0], 0.0f);
}

TEST(Sgd, MomentumAccumulates) {
  Linear lin(1, 1, false);
  lin.weight()[0] = 0.0f;
  auto ps = lin.params();
  Sgd opt(ps, {.lr = 1.0, .momentum = 0.5});
  (*ps[0].grad)[0] = 1.0f;
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(lin.weight()[0], -1.0f, 1e-6);
  (*ps[0].grad)[0] = 1.0f;
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(lin.weight()[0], -2.5f, 1e-6);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Linear lin(1, 1, false);
  lin.weight()[0] = 10.0f;
  auto ps = lin.params();
  Sgd opt(ps, {.lr = 0.1, .weight_decay = 1.0});
  opt.step();  // g = 0 + 1.0*10 => w -= 0.1*10
  EXPECT_NEAR(lin.weight()[0], 9.0f, 1e-5);
}

TEST(Sgd, ProxTermPullsTowardAnchor) {
  Linear lin(1, 1, false);
  lin.weight()[0] = 0.0f;
  auto ps = lin.params();
  Sgd opt(ps, {.lr = 0.1, .prox_mu = 1.0});  // anchor captured at w=0
  lin.weight()[0] = 5.0f;                    // drift away
  opt.step();  // g = mu*(5-0)=5 => w -= 0.5
  EXPECT_NEAR(lin.weight()[0], 4.5f, 1e-5);
}

}  // namespace
}  // namespace fedtrans
