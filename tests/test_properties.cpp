#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregator.hpp"
#include "model/similarity.hpp"
#include "model/transform.hpp"
#include "nn/conv2d.hpp"
#include "test_util.hpp"

namespace fedtrans {
namespace {

// ------------------------------------------------------------------------
// Conv2d gradient correctness swept over geometry (kernel, stride, padding,
// channel counts) — the backward loop nest has enough index arithmetic that
// each corner deserves its own numerical check.
// ------------------------------------------------------------------------

struct ConvCase {
  int in_c, out_c, kernel, stride, padding, hw;
};

class ConvGeometryTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometryTest, NumericalGradientsMatch) {
  const auto c = GetParam();
  Rng rng(0xc0ffee);
  Conv2d conv(c.in_c, c.out_c, c.kernel, c.stride, c.padding);
  conv.init(rng);
  testing::check_gradients(conv, {2, c.in_c, c.hw, c.hw}, rng, 3e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ConvGeometryTest,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 5},   // pointwise
                      ConvCase{2, 3, 1, 1, 0, 6},   // 1x1 mixing
                      ConvCase{1, 2, 3, 1, 1, 6},   // same-pad 3x3
                      ConvCase{3, 2, 3, 2, 1, 8},   // strided
                      ConvCase{2, 2, 5, 1, 2, 8},   // 5x5
                      ConvCase{1, 4, 3, 3, 1, 9},   // aggressive stride
                      ConvCase{4, 1, 3, 1, 0, 6}),  // valid-pad reduce
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      const auto& c = info.param;
      return "in" + std::to_string(c.in_c) + "out" + std::to_string(c.out_c) +
             "k" + std::to_string(c.kernel) + "s" + std::to_string(c.stride) +
             "p" + std::to_string(c.padding);
    });

// ------------------------------------------------------------------------
// Soft aggregation conservation: blending models whose weights all equal
// the same constant must leave every weight at that constant (Eq. 5 is a
// weighted average, not a sum).
// ------------------------------------------------------------------------

class AggregationConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(AggregationConservationTest, ConstantFamilyIsFixedPoint) {
  const int round = GetParam();
  Rng rng(9);
  Model m0(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);
  Model m1 = widen_cell(m0, 0, 2.0, 1, rng);
  Model m2 = deepen_cell(m1, 1, 1, 2, rng);
  std::vector<Model*> models{&m0, &m1, &m2};
  const float kValue = 0.37f;
  for (auto* m : models) {
    auto ws = m->weights();
    for (auto& t : ws) t.fill(kValue);
    m->set_weights(ws);
  }
  std::vector<std::vector<double>> sim{
      {1.0, 0.6, 0.4}, {0.6, 1.0, 0.7}, {0.4, 0.7, 1.0}};
  SoftAggregator agg({0.98, true, true, false});
  agg.aggregate(models, sim, round);
  for (auto* m : models)
    for (auto& t : m->weights())
      for (std::int64_t i = 0; i < t.numel(); ++i)
        ASSERT_NEAR(t[i], kValue, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Rounds, AggregationConservationTest,
                         ::testing::Values(0, 1, 10, 100));

// ------------------------------------------------------------------------
// Similarity shrinks monotonically along a lineage chain: each additional
// transformation moves the child further from the ancestor.
// ------------------------------------------------------------------------

TEST(SimilarityChain, MonotoneAlongLineage) {
  Rng rng(17);
  Model m0(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);
  Model prev = m0;
  double prev_sim = 1.0;
  for (int g = 1; g <= 4; ++g) {
    Model next = g % 2 == 1 ? widen_cell(prev, g % 2, 2.0, g, rng)
                            : deepen_cell(prev, 0, 1, g, rng);
    const double s = model_similarity(m0.spec(), next.spec());
    EXPECT_LE(s, prev_sim + 1e-12) << "generation " << g;
    prev_sim = s;
    prev = std::move(next);
  }
  EXPECT_LT(prev_sim, 1.0);
}

// ------------------------------------------------------------------------
// MAC monotonicity: widen and deepen can only increase model cost, and the
// widen factor ordering carries over to MACs.
// ------------------------------------------------------------------------

class WidenFactorTest : public ::testing::TestWithParam<double> {};

TEST_P(WidenFactorTest, MacsIncreaseWithFactor) {
  Rng rng(23);
  Model parent(ModelSpec::conv(1, 8, 4, 4, {6, 8}), rng);
  Model child = widen_cell(parent, 0, GetParam(), 1, rng);
  EXPECT_GT(child.macs(), parent.macs());
  Model bigger = widen_cell(parent, 0, GetParam() + 1.0, 2, rng);
  EXPECT_GT(bigger.macs(), child.macs());
}

INSTANTIATE_TEST_SUITE_P(Factors, WidenFactorTest,
                         ::testing::Values(1.2, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace fedtrans
